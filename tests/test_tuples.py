"""Unit tests for the tuple-level data model (repro.db.tuples)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.tuples import ProbabilisticTuple, XTuple, make_xtuple
from repro.exceptions import InvalidDatabaseError


class TestProbabilisticTuple:
    def test_valid_construction(self):
        t = ProbabilisticTuple("t0", "S1", 21.0, 0.6)
        assert t.tid == "t0"
        assert t.xtuple_id == "S1"
        assert t.value == 21.0
        assert t.probability == 0.6

    def test_probability_one_is_allowed(self):
        t = ProbabilisticTuple("t", "x", 1.0, 1.0)
        assert t.probability == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.0001, 2.0, float("nan")])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticTuple("t", "x", 1.0, bad)

    def test_boolean_probability_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticTuple("t", "x", 1.0, True)

    @pytest.mark.parametrize("bad_id", ["", None, 7])
    def test_invalid_tid_rejected(self, bad_id):
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticTuple(bad_id, "x", 1.0, 0.5)

    @pytest.mark.parametrize("bad_id", ["", None, 7])
    def test_invalid_xtuple_id_rejected(self, bad_id):
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticTuple("t", bad_id, 1.0, 0.5)

    def test_frozen(self):
        t = ProbabilisticTuple("t0", "S1", 21.0, 0.6)
        with pytest.raises(AttributeError):
            t.probability = 0.7

    def test_non_numeric_probability_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticTuple("t", "x", 1.0, "0.5")


class TestXTuple:
    def test_iteration_and_len(self):
        xt = make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)])
        assert len(xt) == 2
        assert [t.tid for t in xt] == ["t0", "t1"]

    def test_completion_probability_complete(self):
        xt = make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)])
        assert xt.completion_probability == pytest.approx(1.0)
        assert xt.null_probability == 0.0
        assert xt.is_complete

    def test_completion_probability_incomplete(self):
        xt = make_xtuple("S1", [("t0", 21.0, 0.3), ("t1", 32.0, 0.4)])
        assert xt.completion_probability == pytest.approx(0.7)
        assert xt.null_probability == pytest.approx(0.3)
        assert not xt.is_complete

    def test_sum_above_one_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            make_xtuple("S1", [("t0", 1.0, 0.7), ("t1", 2.0, 0.4)])

    def test_sum_to_one_with_roundoff_accepted(self):
        # 10 x 0.1 sums to just above 1.0 in binary floating point.
        xt = make_xtuple("S", [(f"t{i}", float(i), 0.1) for i in range(10)])
        assert xt.is_complete

    def test_empty_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            XTuple(xid="S1", alternatives=())

    def test_duplicate_tid_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            make_xtuple("S1", [("t0", 1.0, 0.3), ("t0", 2.0, 0.3)])

    def test_mismatched_member_xid_rejected(self):
        stray = ProbabilisticTuple("t0", "OTHER", 1.0, 0.5)
        with pytest.raises(InvalidDatabaseError):
            XTuple(xid="S1", alternatives=(stray,))

    def test_non_tuple_member_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            XTuple(xid="S1", alternatives=("not a tuple",))

    def test_is_certain(self):
        certain = make_xtuple("S4", [("t6", 26.0, 1.0)])
        assert certain.is_certain
        uncertain = make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)])
        assert not uncertain.is_certain
        single_incomplete = make_xtuple("S5", [("t7", 1.0, 0.5)])
        assert not single_incomplete.is_certain

    def test_collapsed_to_matches_paper_definition(self):
        # Table I S3 cleaned to t5 must equal Table II's S3.
        s3 = make_xtuple("S3", [("t4", 25.0, 0.4), ("t5", 27.0, 0.6)])
        collapsed = s3.collapsed_to("t5")
        assert collapsed.is_certain
        only = collapsed.alternatives[0]
        assert only.tid == "t5"
        assert only.value == 27.0
        assert only.probability == 1.0
        assert collapsed.xid == "S3"

    def test_collapsed_to_unknown_tid_rejected(self):
        s3 = make_xtuple("S3", [("t4", 25.0, 0.4), ("t5", 27.0, 0.6)])
        with pytest.raises(InvalidDatabaseError):
            s3.collapsed_to("nope")


class TestXTupleProperties:
    @given(
        st.lists(
            st.integers(1, 10), min_size=1, max_size=6
        ).flatmap(
            lambda ws: st.just(ws)
        )
    )
    def test_completion_never_exceeds_one(self, weights):
        total = sum(weights) + 1
        xt = make_xtuple(
            "x", [(f"t{i}", float(i), w / total) for i, w in enumerate(weights)]
        )
        assert 0.0 < xt.completion_probability <= 1.0
        assert 0.0 <= xt.null_probability < 1.0
        assert math.isclose(
            xt.completion_probability + xt.null_probability, 1.0
        )

    @given(st.integers(1, 6))
    def test_collapse_preserves_identity_for_all_members(self, count):
        xt = make_xtuple(
            "x", [(f"t{i}", float(i), 1.0 / count) for i in range(count)]
        )
        for t in xt.alternatives:
            collapsed = xt.collapsed_to(t.tid)
            assert collapsed.is_certain
            assert collapsed.alternatives[0].tid == t.tid
            assert collapsed.alternatives[0].value == t.value
