"""Parallel (sharded) PSR backend cross-validation and determinism.

Three layers of guarantees, matching the serial backends' test
discipline:

* **Exactness** -- the sharded scan (serial in-process and pooled)
  agrees with the scalar ``python`` oracle within 1e-9 absolute on
  every rank probability and top-k probability, across random
  databases, shard sizes down to one row, and the edge shapes the
  planner must get right (k >= block size, all-certain prefixes with
  mid-block cutoffs, x-tuples straddling several blocks, saturation
  landing exactly on a boundary).
* **Determinism** -- block size is fixed by ``REPRO_BLOCK_ROWS``
  alone, never by worker count, so the same arrays produce
  byte-identical ``rho_prefix`` / ``topk_prefix`` across repeated runs
  *and* across worker counts (1, 2, 4).  There is no worker-side RNG
  to seed; this suite pins that equivalence at the byte level.
* **Integration** -- delta replay over parallel-built checkpoints,
  the ``parallel_info`` fallback contract, worker-count resolution
  precedence, spec round-trips, and session counters.

Pooled tests share one module-level process pool and shut it down at
module teardown.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

from repro.core.parallel import (
    DEFAULT_BLOCK_ROWS,
    resolve_workers,
    set_workers,
    shutdown_pool,
    use_workers,
)
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple
from repro.datasets.synthetic import generate_synthetic
from repro.exceptions import InvalidSpecError
from repro.api.specs import BatchSpec, QualitySpec, QuerySpec
from repro.queries.engine import QuerySession
from repro.queries.psr import apply_rank_delta, compute_rank_probabilities

from strategies import databases_with_k

ABS = 1e-9


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    yield
    shutdown_pool()


@pytest.fixture()
def block_rows(monkeypatch):
    """Set ``REPRO_BLOCK_ROWS`` for one test (read per call, not cached)."""

    def _set(rows):
        monkeypatch.setenv("REPRO_BLOCK_ROWS", str(rows))

    return _set


@contextmanager
def _block_rows_env(rows):
    """Scoped ``REPRO_BLOCK_ROWS`` for hypothesis tests (which cannot
    take function-scoped fixtures alongside ``@given``)."""
    previous = os.environ.get("REPRO_BLOCK_ROWS")
    os.environ["REPRO_BLOCK_ROWS"] = str(rows)
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_BLOCK_ROWS"]
        else:
            os.environ["REPRO_BLOCK_ROWS"] = previous


def _assert_matches_oracle(ranked, k, parallel, abs_tol=ABS):
    oracle = compute_rank_probabilities(ranked, k, backend="python")
    assert parallel.backend == "parallel"
    assert parallel.cutoff == oracle.cutoff
    assert parallel.rho_prefix == pytest.approx(oracle.rho_prefix, abs=abs_tol)
    assert parallel.topk_prefix == pytest.approx(
        oracle.topk_prefix, abs=abs_tol
    )


class TestShardedScanExactness:
    """In-process sharded scan vs the scalar oracle (no pool)."""

    @settings(max_examples=100, deadline=None)
    @given(databases_with_k())
    def test_random_databases_tiny_blocks(self, db_k):
        db, k = db_k
        with _block_rows_env(2):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=1
            )
        _assert_matches_oracle(db.ranked(), k, parallel)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(complete=False, max_xtuples=5))
    def test_incomplete_databases_single_row_blocks(self, db_k):
        # One row per block: every boundary is live, every multi-
        # alternative x-tuple straddles, and no factor is degenerate.
        db, k = db_k
        with _block_rows_env(1):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=1
            )
        _assert_matches_oracle(db.ranked(), k, parallel)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(complete=True))
    def test_complete_databases_saturate_at_boundaries(self, db_k):
        db, k = db_k
        with _block_rows_env(2):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=1
            )
        _assert_matches_oracle(db.ranked(), k, parallel)

    def test_k_larger_than_block_size(self, block_rows):
        block_rows(4)
        db = generate_synthetic(num_xtuples=30, completion=0.85, seed=3)
        k = 25  # >> block size: factors and prefixes stay k-wide
        parallel = compute_rank_probabilities(
            db.ranked(), k, backend="parallel", workers=1
        )
        _assert_matches_oracle(db.ranked(), k, parallel)

    def test_all_certain_prefix_cuts_off_mid_block(self, block_rows):
        # Ten certain singletons saturate rank by rank; with k=4 the
        # Lemma 2 stop lands inside the second 3-row block and the
        # remaining blocks must be planned away entirely.
        block_rows(3)
        xtuples = [
            make_xtuple(f"c{i}", [(f"t{i}", 100.0 - i, 1.0)])
            for i in range(10)
        ]
        db = ProbabilisticDatabase(xtuples, name="certain")
        k = 4
        parallel = compute_rank_probabilities(
            db.ranked(), k, backend="parallel", workers=1
        )
        _assert_matches_oracle(db.ranked(), k, parallel)
        assert parallel.cutoff == k

    def test_xtuple_straddles_many_blocks(self, block_rows):
        # One x-tuple's alternatives interleave across the whole ranked
        # order: it stays open over every boundary of the 2-row blocks.
        block_rows(2)
        spread = make_xtuple(
            "wide",
            [(f"w{i}", 90.0 - 10 * i, 0.2) for i in range(4)],
        )
        fillers = [
            make_xtuple(f"f{i}", [(f"g{i}", 85.0 - 10 * i, 0.7)])
            for i in range(4)
        ]
        db = ProbabilisticDatabase([spread] + fillers, name="straddle")
        for k in (1, 3, 8):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=1
            )
            _assert_matches_oracle(db.ranked(), k, parallel)

    def test_saturation_exactly_on_boundary(self, block_rows):
        # Each complete x-tuple's two alternatives are rank-adjacent,
        # so with 2-row blocks every boundary coincides with an x-tuple
        # reaching full mass -- the planner's clamp-at-boundary path.
        block_rows(2)
        xtuples = [
            make_xtuple(
                f"x{i}",
                [
                    (f"a{i}", 100.0 - 10 * i, 0.5),
                    (f"b{i}", 99.0 - 10 * i, 0.5),
                ],
            )
            for i in range(4)
        ]
        db = ProbabilisticDatabase(xtuples, name="boundary")
        for k in (2, 5, 8):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=1
            )
            _assert_matches_oracle(db.ranked(), k, parallel)


class TestPooledExecution:
    """Real multiprocessing runs over shared-memory shards."""

    def test_pooled_matches_oracle(self, block_rows):
        block_rows(32)
        db = generate_synthetic(num_xtuples=120, completion=0.85, seed=11)
        k = 50
        parallel = compute_rank_probabilities(
            db.ranked(), k, backend="parallel", workers=2
        )
        assert parallel.parallel_info["mode"] == "pool"
        assert parallel.parallel_info["fallback"] is None
        assert parallel.parallel_info["workers"] == 2
        _assert_matches_oracle(db.ranked(), k, parallel)

    def test_bit_identical_across_worker_counts(self, block_rows):
        # Block size is fixed by REPRO_BLOCK_ROWS alone, every write is
        # disjoint, and there is no worker-side RNG: worker count must
        # not change a single byte of the output.
        block_rows(32)
        db = generate_synthetic(num_xtuples=150, completion=0.9, seed=13)
        ranked = db.ranked()
        k = 40
        runs = {
            workers: compute_rank_probabilities(
                ranked, k, backend="parallel", workers=workers
            )
            for workers in (1, 2, 4)
        }
        assert runs[1].parallel_info["mode"] == "serial"
        assert runs[2].parallel_info["mode"] == "pool"
        assert runs[4].parallel_info["mode"] == "pool"
        base = runs[1]
        for workers in (2, 4):
            other = runs[workers]
            assert other.cutoff == base.cutoff
            assert other.rho_prefix.tobytes() == base.rho_prefix.tobytes()
            assert other.topk_prefix.tobytes() == base.topk_prefix.tobytes()

    def test_bit_identical_across_repeated_runs(self, block_rows):
        block_rows(32)
        db = generate_synthetic(num_xtuples=100, completion=0.8, seed=17)
        ranked = db.ranked()
        first = compute_rank_probabilities(
            ranked, 30, backend="parallel", workers=2
        )
        second = compute_rank_probabilities(
            ranked, 30, backend="parallel", workers=2
        )
        assert first.rho_prefix.tobytes() == second.rho_prefix.tobytes()
        assert first.topk_prefix.tobytes() == second.topk_prefix.tobytes()

    @pytest.mark.parametrize("completion", [1.0, 0.85])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pooled_sweep(self, block_rows, completion, workers):
        block_rows(16)
        db = generate_synthetic(
            num_xtuples=80, completion=completion, seed=19
        )
        for k in (1, 10, 64):
            parallel = compute_rank_probabilities(
                db.ranked(), k, backend="parallel", workers=workers
            )
            _assert_matches_oracle(db.ranked(), k, parallel)


class TestDeltaReplayOverParallelCheckpoints:
    """Incremental cleaning deltas against a parallel-built cache."""

    @pytest.mark.parametrize("completion", [1.0, 0.85])
    def test_delta_in_first_block(self, block_rows, completion):
        block_rows(16)
        db = generate_synthetic(
            num_xtuples=60, completion=completion, seed=23
        )
        ranked = db.ranked()
        k = 30
        rank_probs = compute_rank_probabilities(
            ranked, k, backend="parallel", workers=1
        )
        assert rank_probs.checkpoints  # block-boundary checkpoints
        xid = ranked.order[0].xtuple_id  # top-ranked row: first block
        xt = ranked.db.xtuple(xid)
        ranked2, delta = ranked.with_xtuple_replaced(
            xid, xt.collapsed_to(xt.alternatives[0].tid)
        )
        patched = apply_rank_delta(rank_probs, delta, backend="parallel")
        cold = compute_rank_probabilities(
            ranked2, k, backend="parallel", workers=1
        )
        assert patched.cutoff == cold.cutoff
        assert patched.rho_prefix == pytest.approx(cold.rho_prefix, abs=ABS)
        assert patched.topk_prefix == pytest.approx(cold.topk_prefix, abs=ABS)

    @pytest.mark.parametrize("completion", [1.0, 0.85])
    def test_delta_in_later_block(self, block_rows, completion):
        block_rows(16)
        db = generate_synthetic(
            num_xtuples=60, completion=completion, seed=29
        )
        ranked = db.ranked()
        k = 40
        rank_probs = compute_rank_probabilities(
            ranked, k, backend="parallel", workers=1
        )
        # Pick an x-tuple whose first appearance is past the second
        # block boundary, so replay resumes from a block checkpoint.
        target = None
        for row, t in enumerate(ranked.order):
            if row >= 32:
                target = t.xtuple_id
                break
        assert target is not None
        xt = ranked.db.xtuple(target)
        ranked2, delta = ranked.with_xtuple_replaced(
            target, xt.collapsed_to(xt.alternatives[-1].tid)
        )
        patched = apply_rank_delta(rank_probs, delta, backend="parallel")
        cold = compute_rank_probabilities(
            ranked2, k, backend="parallel", workers=1
        )
        assert patched.cutoff == cold.cutoff
        assert patched.rho_prefix == pytest.approx(cold.rho_prefix, abs=ABS)
        assert patched.topk_prefix == pytest.approx(cold.topk_prefix, abs=ABS)

    def test_chained_deltas_match_scalar_cold(self, block_rows):
        block_rows(8)
        db = generate_synthetic(num_xtuples=40, completion=0.9, seed=31)
        ranked = db.ranked()
        k = 20
        rank_probs = compute_rank_probabilities(
            ranked, k, backend="parallel", workers=1
        )
        import random

        rng = random.Random(37)
        for _ in range(3):
            candidates = [
                x.xid for x in ranked.db.xtuples if len(x.alternatives) > 1
            ]
            if not candidates:
                break
            xid = rng.choice(candidates)
            xt = ranked.db.xtuple(xid)
            tid = rng.choice([t.tid for t in xt.alternatives])
            ranked, delta = ranked.with_xtuple_replaced(
                xid, xt.collapsed_to(tid)
            )
            rank_probs = apply_rank_delta(
                rank_probs, delta, backend="parallel"
            )
        cold = compute_rank_probabilities(ranked, k, backend="python")
        assert rank_probs.cutoff == cold.cutoff
        assert rank_probs.rho_prefix == pytest.approx(
            cold.rho_prefix, abs=ABS
        )
        assert rank_probs.topk_prefix == pytest.approx(
            cold.topk_prefix, abs=ABS
        )


class TestFallbackContract:
    """``parallel_info`` names why a pool was (not) used."""

    def test_workers_one_falls_back_serial(self, block_rows):
        block_rows(8)
        db = generate_synthetic(num_xtuples=30, completion=0.85, seed=41)
        result = compute_rank_probabilities(
            db.ranked(), 10, backend="parallel", workers=1
        )
        info = result.parallel_info
        assert info["mode"] == "serial"
        assert info["fallback"] == "workers <= 1"
        assert info["blocks"] > 1

    def test_single_block_falls_back_serial(self, block_rows):
        block_rows(DEFAULT_BLOCK_ROWS)
        db = generate_synthetic(num_xtuples=20, completion=0.85, seed=43)
        result = compute_rank_probabilities(
            db.ranked(), 10, backend="parallel", workers=4
        )
        info = result.parallel_info
        assert info["mode"] == "serial"
        assert info["fallback"] == "single live block"
        assert info["blocks"] == 1

    def test_serial_backends_have_no_parallel_info(self):
        db = generate_synthetic(num_xtuples=10, completion=0.85, seed=47)
        for backend in ("python", "numpy"):
            result = compute_rank_probabilities(db.ranked(), 5, backend=backend)
            assert result.parallel_info is None


class TestWorkerResolution:
    """Precedence: scoped override > explicit arg > env > cpu count."""

    def test_explicit_argument(self):
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2  # explicit beats env

    def test_scoped_override_beats_explicit(self):
        with use_workers(2):
            assert resolve_workers(8) == 2
        assert resolve_workers(8) == 8

    def test_use_workers_none_is_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        with use_workers(None):
            assert resolve_workers() == 3

    def test_nested_overrides_restore(self):
        with use_workers(4):
            with use_workers(2):
                assert resolve_workers() == 2
            assert resolve_workers() == 4

    def test_set_workers_round_trip(self):
        set_workers(6)
        try:
            assert resolve_workers(1) == 6
        finally:
            set_workers(None)

    def test_invalid_counts_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            set_workers(-1)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)


class TestSpecsAndSessions:
    """The workers knob through specs, sessions, and counters."""

    def test_query_spec_workers_round_trip(self):
        spec = QuerySpec(k=3, workers=2)
        assert QuerySpec.from_dict(spec.to_dict()).workers == 2
        assert QuerySpec.from_dict(QuerySpec(k=3).to_dict()).workers is None

    def test_quality_spec_workers_round_trip(self):
        spec = QualitySpec(k=2, workers=4)
        assert QualitySpec.from_dict(spec.to_dict()).workers == 4

    def test_batch_spec_workers_round_trip(self):
        spec = BatchSpec(items=[QuerySpec(k=2)], workers=2)
        assert BatchSpec.from_dict(spec.to_dict()).workers == 2

    def test_invalid_spec_workers_rejected(self):
        with pytest.raises(InvalidSpecError):
            QuerySpec(k=3, workers=0)
        with pytest.raises(InvalidSpecError):
            QualitySpec(k=3, workers=-2)
        with pytest.raises(InvalidSpecError):
            QuerySpec(k=3, workers=True)

    def test_batch_items_must_not_set_workers(self):
        with pytest.raises(InvalidSpecError):
            BatchSpec(items=[QuerySpec(k=2, workers=2)])

    def test_session_counts_parallel_passes(self, block_rows):
        block_rows(8)
        db = generate_synthetic(num_xtuples=30, completion=0.85, seed=53)
        session = QuerySession(db.ranked(), backend="parallel", workers=1)
        session.ukranks(10)
        assert session.psr_parallel_passes == 1
        assert session.psr_parallel_fallbacks == 1  # workers=1 -> serial
        session.ukranks(10)  # cache hit: no new pass
        assert session.psr_parallel_passes == 1

    def test_session_rejects_invalid_workers(self):
        db = generate_synthetic(num_xtuples=5, completion=1.0, seed=59)
        with pytest.raises(ValueError):
            QuerySession(db.ranked(), backend="parallel", workers=0)
