"""``repro-lint``: one known-good / known-bad fixture per rule.

Each rule is exercised against a minimal module written into a temp
tree that mirrors the real ``src/repro/...`` layout (the rules are
path-scoped, so layout *is* input).  The suite ends with the
self-check the PR's contract demands: ``repro-lint`` over the real
``src/`` reports zero findings at HEAD.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tooling.lint import (
    RULES,
    Finding,
    LintConfig,
    LintReport,
    RuleConfig,
    lint_paths,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(
    tmp_path: Path, relpath: str, code: str, config: LintConfig = None
) -> LintReport:
    """Write ``code`` at ``relpath`` under a temp root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint_paths(
        [relpath], root=tmp_path, config=config or LintConfig()
    )


def codes(report: LintReport) -> list:
    return [f.code for f in report.findings]


# ---------------------------------------------------------------------------
# REP001 unseeded-rng
# ---------------------------------------------------------------------------


class TestUnseededRNG:
    def test_flags_module_level_random(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            import random
            v = random.random()
            """,
        )
        assert codes(report) == ["REP001"]

    def test_flags_unseeded_constructors(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            import random
            import numpy as np
            a = random.Random()
            b = np.random.default_rng()
            """,
        )
        assert codes(report) == ["REP001", "REP001"]

    def test_flags_legacy_numpy_global_state(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            import numpy as np
            v = np.random.rand(3)
            """,
        )
        assert codes(report) == ["REP001"]

    def test_flags_from_random_import_function(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            from random import randint
            """,
        )
        assert codes(report) == ["REP001"]

    def test_seeded_rng_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            import random
            import numpy as np
            from random import Random
            a = random.Random(7)
            b = np.random.default_rng(123)
            c = Random(seed := 5)
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP002 untracked-shared-memory
# ---------------------------------------------------------------------------


SHM_CREATE = """
from multiprocessing.shared_memory import SharedMemory
seg = SharedMemory(name="repro_x", create=True, size=64)
"""


class TestUntrackedSharedMemory:
    def test_flags_create_outside_parallel(self, tmp_path):
        report = lint_source(tmp_path, "src/repro/queries/x.py", SHM_CREATE)
        assert codes(report) == ["REP002"]

    def test_parallel_module_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "src/repro/core/parallel.py", SHM_CREATE
        )
        assert codes(report) == []

    def test_attach_existing_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            from multiprocessing.shared_memory import SharedMemory
            seg = SharedMemory(name="repro_x")
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP003 wall-clock-in-kernel
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_flags_time_time_in_kernel(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            import time
            t = time.time()
            """,
        )
        assert codes(report) == ["REP003"]

    def test_flags_datetime_now(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            import datetime
            t = datetime.datetime.now()
            """,
        )
        assert codes(report) == ["REP003"]

    def test_monotonic_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            import time
            t0 = time.monotonic()
            t1 = time.perf_counter()
            """,
        )
        assert codes(report) == []

    def test_service_layer_out_of_scope(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            import time
            t = time.time()
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP004 float-equality
# ---------------------------------------------------------------------------


class TestFloatEquality:
    def test_flags_float_literal_equality(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            def f(x):
                return x == 0.0 or x != -1.5
            """,
        )
        assert codes(report) == ["REP004", "REP004"]

    def test_ordered_and_int_comparisons_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            def f(x, tol=1e-9):
                return x <= 0.0 or abs(x - 1.5) < tol or x == 0
            """,
        )
        assert codes(report) == []

    def test_out_of_scope_elsewhere(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/datasets/x.py",
            """
            def f(x):
                return x == 0.0
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP005 unfrozen-api-spec
# ---------------------------------------------------------------------------


class TestFrozenApiSpecs:
    def test_flags_unfrozen_dataclass(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            from dataclasses import dataclass

            @dataclass
            class Spec:
                k: int = 1
            """,
        )
        assert codes(report) == ["REP005"]

    def test_flags_type_tagged_spec_without_round_trip(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                TYPE = "query"
                k: int = 1
            """,
        )
        assert codes(report) == ["REP005"]
        assert "to_dict" in report.findings[0].message

    def test_frozen_round_tripping_spec_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                TYPE = "query"
                k: int = 1

                def to_dict(self):
                    return {"k": self.k}

                @classmethod
                def from_dict(cls, payload):
                    return cls(**payload)
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP006 swallowed-base-exception
# ---------------------------------------------------------------------------


class TestExceptionHygiene:
    def test_flags_bare_except(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert codes(report) == ["REP006"]

    def test_flags_swallowed_base_exception(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                pass
            except BaseException:
                cleanup = True
            """,
        )
        assert codes(report) == ["REP006"]

    def test_reraising_base_exception_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                pass
            except ValueError:
                pass
            try:
                pass
            except BaseException:
                cleanup = True
                raise
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP007 undeclared-counter
# ---------------------------------------------------------------------------


class TestCounterRegistry:
    def test_flags_undeclared_counter(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            class S:
                def __init__(self):
                    self.psr_bogus = 0

                def bump(self):
                    self.psr_bogus += 1
            """,
        )
        assert codes(report) == ["REP007", "REP007"]

    def test_registered_counters_are_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            class S:
                def __init__(self):
                    self.psr_hits = 0
                    self.psr_misses = 0

                def bump(self):
                    self.psr_hits += 1
            """,
        )
        assert codes(report) == []

    def test_store_counters_are_declared(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/store/x.py",
            """
            class S:
                def __init__(self):
                    self.psr_store_writes = 0
                    self.psr_store_replays = 0
                    self.psr_store_quarantined = 0
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP008 print-in-library
# ---------------------------------------------------------------------------


class TestPrintInLibrary:
    def test_flags_print(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            print("debugging")
            """,
        )
        assert codes(report) == ["REP008"]

    def test_config_exclude_exempts_path(self, tmp_path):
        config = LintConfig(
            rules={"REP008": RuleConfig(exclude=("src/repro/db/x.py",))}
        )
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            print("this module's job is stdout")
            """,
            config=config,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP009 layering-violation
# ---------------------------------------------------------------------------


class TestLayering:
    def test_db_must_not_import_upward(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            from repro.queries.engine import QuerySession
            """,
        )
        assert codes(report) == ["REP009"]

    def test_lower_layer_must_not_import_api(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            from repro.api.service import TopKService
            """,
        )
        assert codes(report) == ["REP009"]

    def test_library_must_not_import_tooling(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            from repro.tooling import lint
            """,
        )
        assert codes(report) == ["REP009"]

    def test_function_level_import_is_sanctioned(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            def lazy():
                from repro.queries.engine import QuerySession

                return QuerySession
            """,
        )
        assert codes(report) == []

    def test_cli_may_import_api(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/cli.py",
            """
            from repro.api.service import TopKService
            """,
        )
        assert codes(report) == []

    def test_store_must_not_import_api(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/store/x.py",
            """
            from repro.api.pool import SessionPool
            """,
        )
        # Flagged both as an out-of-layer store import and as a
        # non-sanctioned importer of the service façade.
        assert "REP009" in codes(report)

    def test_db_must_not_import_store(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            from repro.store import SnapshotStore
            """,
        )
        assert codes(report) == ["REP009", "REP009"]

    def test_store_may_import_db_and_faults(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/store/x.py",
            """
            from repro.db.database import ProbabilisticDatabase
            from repro.exceptions import CorruptSnapshotError
            from repro.testing.faults import FaultPlan
            from repro.core.lockcheck import OrderedLock
            """,
        )
        assert codes(report) == []

    def test_api_may_import_store(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            from repro.store import SnapshotStore
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP010 mutable-default-argument
# ---------------------------------------------------------------------------


class TestMutableDefaults:
    def test_flags_literal_and_constructor_defaults(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            def f(xs=[], *, seen=set(), table={}):
                return xs, seen, table
            """,
        )
        assert codes(report) == ["REP010", "REP010", "REP010"]

    def test_none_default_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            def f(xs=None, count=0, name="x"):
                return xs, count, name
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# REP011 unscoped-file-write
# ---------------------------------------------------------------------------


class TestScopedWrites:
    def test_flags_write_mode_open_outside_store(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            def dump(path, text):
                with open(path, "w", encoding="utf-8") as f:
                    f.write(text)
            """,
        )
        assert codes(report) == ["REP011"]

    def test_flags_append_and_keyword_mode(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            def log(path):
                open(path, mode="ab").close()
            """,
        )
        assert codes(report) == ["REP011"]

    def test_flags_path_open_plus_mode(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            def touch(path):
                with path.open("r+b") as f:
                    f.truncate()
            """,
        )
        assert codes(report) == ["REP011"]

    def test_flags_os_open_write_flags(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            import os

            def raw(path):
                return os.open(path, os.O_WRONLY | os.O_CREAT)
            """,
        )
        assert codes(report) == ["REP011", "REP011"]

    def test_reads_are_clean_everywhere(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            import os

            def slurp(path):
                with open(path, "r", encoding="utf-8") as f:
                    data = f.read()
                fd = os.open(path, os.O_RDONLY)
                os.close(fd)
                return data
            """,
        )
        assert codes(report) == []

    def test_store_and_io_and_cli_are_sanctioned(self, tmp_path):
        code = """
            def persist(path, data):
                with open(path, "wb") as f:
                    f.write(data)
            """
        for relpath in (
            "src/repro/store/x.py",
            "src/repro/db/io.py",
            "src/repro/cli.py",
        ):
            report = lint_source(tmp_path, relpath, code)
            assert codes(report) == [], relpath


# ---------------------------------------------------------------------------
# REP012 unscoped-file-locking
# ---------------------------------------------------------------------------


class TestScopedLocking:
    def test_flags_fcntl_import_and_call_outside_store(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/api/x.py",
            """
            import fcntl

            def grab(fd):
                fcntl.flock(fd, fcntl.LOCK_EX)
            """,
        )
        assert codes(report) == ["REP012", "REP012", "REP012"]

    def test_flags_from_import(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/queries/x.py",
            """
            from fcntl import flock

            def grab(fd):
                flock(fd, 2)
            """,
        )
        assert codes(report) == ["REP012"]

    def test_store_is_sanctioned(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/store/x.py",
            """
            import fcntl

            def grab(fd):
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            """,
        )
        assert codes(report) == []

    def test_unrelated_attribute_access_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/core/x.py",
            """
            class Box:
                flock = None

            def use(box):
                return box.flock
            """,
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# Framework behaviour
# ---------------------------------------------------------------------------


class TestFramework:
    def test_syntax_error_becomes_rep000(self, tmp_path):
        report = lint_source(tmp_path, "src/repro/db/x.py", "def broken(:\n")
        assert codes(report) == ["REP000"]
        assert report.errors == 1

    def test_inline_pragma_suppresses_on_line(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            print("tolerated")  # repro-lint: disable=REP008
            print("still flagged")
            """,
        )
        assert codes(report) == ["REP008"]
        assert report.findings[0].line == 3

    def test_severity_override_downgrades_exit_code(self, tmp_path, capsys):
        target = tmp_path / "src/repro/db/x.py"
        target.parent.mkdir(parents=True)
        target.write_text('print("hello")\n', encoding="utf-8")
        (tmp_path / "pyproject.toml").write_text(
            '[tool."repro-lint".REP008]\nseverity = "warning"\n',
            encoding="utf-8",
        )
        exit_code = main(["--root", str(tmp_path), "src"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "REP008 warning" in out

    def test_disabled_rule_is_skipped(self, tmp_path):
        config = LintConfig(rules={"REP008": RuleConfig(enabled=False)})
        report = lint_source(
            tmp_path, "src/repro/db/x.py", 'print("off")\n', config=config
        )
        assert codes(report) == []

    def test_json_output_shape(self, tmp_path, capsys):
        target = tmp_path / "src/repro/db/x.py"
        target.parent.mkdir(parents=True)
        target.write_text('print("hello")\n', encoding="utf-8")
        exit_code = main(["--root", str(tmp_path), "--json", "src"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["summary"] == {"errors": 1, "warnings": 0}
        (finding,) = payload["findings"]
        assert finding["code"] == "REP008"
        assert finding["path"] == "src/repro/db/x.py"
        assert finding["line"] == 1

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "nowhere"]) == 2
        assert "nowhere" in capsys.readouterr().err

    def test_findings_are_sorted_and_renderable(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/db/x.py",
            """
            print("b")
            print("a")
            """,
        )
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        rendered = report.findings[0].render()
        assert rendered.startswith("src/repro/db/x.py:2:0: REP008 error:")

    def test_every_rule_has_catalogue_metadata(self):
        assert len(RULES) == 12
        for code, rule in RULES.items():
            assert code.startswith("REP") and len(code) == 6
            assert rule.description and rule.name
            assert rule.severity in ("error", "warning")

    def test_finding_round_trips_to_dict(self):
        finding = Finding("REP001", "error", "src/x.py", 3, 7, "msg")
        assert finding.to_dict()["line"] == 3


# ---------------------------------------------------------------------------
# The contract: the real tree is clean
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_src_tree_is_clean_at_head(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        report = lint_paths(["src"], root=REPO_ROOT, config=config)
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.files_checked > 50

    def test_pyproject_scopes_rep008_to_cli_only(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        assert "src/repro/cli.py" in config.rules["REP008"].exclude
        # Without the exclusion the CLI's renderers would be findings:
        # the exemption is load-bearing, not decorative.
        report = lint_paths(
            ["src/repro/cli.py"], root=REPO_ROOT, config=LintConfig()
        )
        assert "REP008" in codes(report)
