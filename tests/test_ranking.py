"""Unit tests for ranking functions (repro.db.ranking)."""

import pytest

from repro.db.ranking import by_key, by_sum_of_keys, by_value, custom
from repro.db.tuples import ProbabilisticTuple


def _tuple(value):
    return ProbabilisticTuple("t", "x", value, 0.5)


class TestByValue:
    def test_scores_numeric_value(self):
        assert by_value()(_tuple(21.0)) == 21.0

    def test_coerces_ints(self):
        assert by_value()(_tuple(3)) == 3.0

    def test_name(self):
        assert by_value().name == "by_value"


class TestByKey:
    def test_extracts_mapping_entry(self):
        t = _tuple({"rating": 0.75, "date": 0.5})
        assert by_key("rating")(t) == 0.75

    def test_missing_key_raises(self):
        t = _tuple({"rating": 0.75})
        with pytest.raises(KeyError):
            by_key("date")(t)


class TestBySumOfKeys:
    def test_mov_score(self):
        t = _tuple({"rating": 0.75, "date": 0.5, "movie_id": 3})
        assert by_sum_of_keys("date", "rating")(t) == pytest.approx(1.25)

    def test_name_lists_keys(self):
        assert "date" in by_sum_of_keys("date", "rating").name


class TestCustom:
    def test_wraps_callable(self):
        ranking = custom(lambda t: -float(t.value), name="neg")
        assert ranking(_tuple(4.0)) == -4.0
        assert ranking.name == "neg"
