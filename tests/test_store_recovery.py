"""Crash-atomicity and recovery of the durable serving stack.

The property under test (the ISSUE's acceptance bar): a crash at *any*
step of the store's write protocols leaves the next open with either
the complete pre-write state or the complete post-write state -- never
a torn hybrid, never silently wrong data.  Each crash point is injected
via :mod:`repro.testing.faults`, the "process death" is a
:class:`~repro.exceptions.SimulatedCrashError` (in-process) or a real
``SIGKILL`` (the subprocess test), and recovery is judged against an
oracle service that ran the same deterministic workload without
faults -- payloads must agree to 1e-9.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import assert_payloads_close
from repro.api.service import TopKService
from repro.api.specs import CleaningSpec, QuerySpec
from repro.datasets.synthetic import generate_synthetic
from repro.db import io
from repro.db.database import RankedDatabase
from repro.db.ranking import by_value
from repro.exceptions import (
    JournalReplayError,
    SimulatedCrashError,
    StoreWriteError,
)
from repro.store import RetentionPolicy, SnapshotStore
from repro.testing import FaultEvent, FaultPlan, use_faults

K = 5
CLEAN_SPEC = CleaningSpec(k=K, budget=40, execute=True, seed=7)
QUERY_SPEC = QuerySpec(k=K)


def small_db(seed: int = 3):
    return generate_synthetic(num_xtuples=20, seed=seed)


def oracle_outcome():
    """The fault-free result of the canonical workload: (id, payload)."""
    service = TopKService()
    base = service.register(small_db()).snapshot_id
    outcome = service.clean(base, CLEAN_SPEC).payload["new_snapshot_id"]
    return base, outcome, service.query(outcome, QUERY_SPEC).payload


@pytest.fixture(scope="module")
def oracle():
    return oracle_outcome()


class TestDurableRoundTrip:
    def test_snapshots_survive_a_restart(self, tmp_path, oracle):
        base_id, outcome_id, oracle_payload = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        assert service.register(small_db()).snapshot_id == base_id
        result = service.clean(base_id, CLEAN_SPEC)
        assert result.payload["new_snapshot_id"] == outcome_id
        assert result.counters["psr_store_writes"] == 1

        # "Restart": a brand-new service over the same directory.
        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        assert reopened.store.recovery.loaded == tuple(
            sorted((base_id, outcome_id))
        )
        assert reopened.store.recovery.quarantined == ()
        assert_payloads_close(
            reopened.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )
        # Nothing pending, nothing replayed: recovery was pure reads.
        assert reopened.store.pending_cleanings() == []
        assert reopened.store.counters()["psr_store_replays"] == 0

    def test_register_envelope_carries_store_deltas(self, tmp_path):
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        result = service.register(small_db())
        assert result.counters["psr_store_writes"] == 1
        again = service.register(small_db())
        assert again.counters["psr_store_writes"] == 0  # idempotent

    def test_durable_false_keeps_cleaning_memory_only(self, tmp_path, oracle):
        base_id, outcome_id, _ = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        spec = CleaningSpec(
            k=K, budget=40, execute=True, seed=7, durable=False
        )
        assert service.clean(base_id, spec).payload["new_snapshot_id"] == (
            outcome_id
        )
        assert outcome_id in service.pool
        assert not service.store.has_segment(outcome_id)
        assert service.store.journal_records() == []

    def test_pool_and_store_never_disagree_on_failed_persist(self, tmp_path):
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        plan = FaultPlan([FaultEvent(kind="enospc", step="segment:written")])
        with use_faults(plan):
            with pytest.raises(StoreWriteError):
                service.register(small_db())
        # Persist-first-then-publish: the failed write is invisible in
        # *both* the store and the pool.
        assert service.pool.num_snapshots == 0
        assert service.store.snapshots() == {}
        # The same registration succeeds once the disk recovers.
        snapshot_id = service.register(small_db()).snapshot_id
        assert snapshot_id in service.pool
        assert service.store.has_segment(snapshot_id)


# ---------------------------------------------------------------------------
# The crash-point sweep
# ---------------------------------------------------------------------------

#: Every write step of the clean path, with the state the next open
#: must recover: "pre" (the cleaning never happened) or "post" (the
#: outcome is available, by durable segment or by journal replay).
CRASH_POINTS = [
    ("journal:begin", "pre"),
    ("journal:payload", "pre"),
    ("journal:written", "post"),
    ("journal:synced", "post"),
    ("segment:begin", "post"),
    ("segment:payload", "post"),
    ("segment:written", "post"),
    ("segment:synced", "post"),
    ("segment:renamed", "post"),
    ("segment:committed", "post"),
]


class TestCrashSweep:
    @pytest.mark.parametrize(
        "step,expected", CRASH_POINTS, ids=[s for s, _ in CRASH_POINTS]
    )
    def test_crash_yields_pre_or_post_state(
        self, tmp_path, oracle, step, expected
    ):
        base_id, outcome_id, oracle_payload = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())

        plan = FaultPlan([FaultEvent(kind="crash", step=step)])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.clean(base_id, CLEAN_SPEC)
        assert plan.drawn, f"no disk fault fired at {step}"

        # The "process" died; reopen the directory from scratch.
        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        assert base_id in reopened.pool
        if expected == "pre":
            assert outcome_id not in reopened.pool
            assert not reopened.store.has_segment(outcome_id)
            assert reopened.store.journal_records() == []
        else:
            assert reopened.store.has_segment(outcome_id)
            assert reopened.store.pending_cleanings() == []
            assert_payloads_close(
                reopened.query(outcome_id, QUERY_SPEC).payload,
                oracle_payload,
            )

    def test_crash_before_segment_commit_recovers_by_replay(
        self, tmp_path, oracle
    ):
        # Journal durable, segment missing: the reopened service must
        # re-execute the journaled spec, and count it as a replay.
        base_id, outcome_id, oracle_payload = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        plan = FaultPlan([FaultEvent(kind="crash", step="segment:begin")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.clean(base_id, CLEAN_SPEC)

        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        assert reopened.store.counters()["psr_store_replays"] == 1
        assert reopened.store.has_segment(outcome_id)
        assert_payloads_close(
            reopened.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )

    def test_torn_segment_write_is_quarantined_then_replayed(
        self, tmp_path, oracle
    ):
        # A torn write renames a truncated segment durably and then
        # dies: the reopen must detect it, quarantine it, and heal the
        # snapshot from the journal -- zero silent corruption.
        base_id, outcome_id, oracle_payload = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        plan = FaultPlan([FaultEvent(kind="torn", step="segment:payload")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.clean(base_id, CLEAN_SPEC)

        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        report = reopened.store.recovery
        assert [name for name, _ in report.quarantined] == [
            outcome_id + ".seg"
        ]
        assert reopened.store.counters()["psr_store_quarantined"] == 1
        assert reopened.store.counters()["psr_store_replays"] == 1
        assert_payloads_close(
            reopened.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )

    def test_torn_journal_append_reverts_to_pre_state(self, tmp_path, oracle):
        base_id, outcome_id, _ = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        plan = FaultPlan([FaultEvent(kind="torn", step="journal:payload")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.clean(base_id, CLEAN_SPEC)

        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        assert reopened.store.recovery.journal_truncated_bytes > 0
        assert reopened.store.journal_records() == []
        assert not reopened.store.has_segment(outcome_id)
        assert base_id in reopened.pool

    def test_bitflipped_segment_is_caught_at_reopen(self, tmp_path, oracle):
        # The flip happens in the payload *before* a fully "successful"
        # write -- the running process never notices.  The next open
        # must: checksums catch it, quarantine isolates it, replay
        # regenerates it.
        base_id, outcome_id, oracle_payload = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        plan = FaultPlan([FaultEvent(kind="bitflip", step="segment:payload")])
        with use_faults(plan):
            result = service.clean(base_id, CLEAN_SPEC)  # no error!
        assert result.payload["new_snapshot_id"] == outcome_id

        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        assert len(reopened.store.recovery.quarantined) == 1
        assert reopened.store.counters()["psr_store_replays"] == 1
        assert_payloads_close(
            reopened.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )


# ---------------------------------------------------------------------------
# Crash sweep: checkpoint, GC, and lock steps
# ---------------------------------------------------------------------------

# A crash anywhere in the atomic journal rewrite leaves either the
# complete old journal ("pre") or the complete new one ("post") -- the
# rename is the commit point.
CHECKPOINT_CRASH_POINTS = [
    ("checkpoint:begin", "pre"),
    ("checkpoint:payload", "pre"),
    ("checkpoint:written", "pre"),
    ("checkpoint:synced", "pre"),
    ("checkpoint:renamed", "post"),
    ("checkpoint:committed", "post"),
]


class TestCheckpointCrashSweep:
    def cleaned_service(self, tmp_path, base_id):
        """A store whose journal holds one droppable clean record."""
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        service.clean(base_id, CLEAN_SPEC)
        assert len(service.store.journal_records()) == 1
        return service

    @pytest.mark.parametrize(
        "step,expected",
        CHECKPOINT_CRASH_POINTS,
        ids=[s for s, _ in CHECKPOINT_CRASH_POINTS],
    )
    def test_checkpoint_crash_yields_pre_or_post_journal(
        self, tmp_path, oracle, step, expected
    ):
        base_id, outcome_id, oracle_payload = oracle
        service = self.cleaned_service(tmp_path, base_id)
        plan = FaultPlan([FaultEvent(kind="crash", step=step)])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.store.checkpoint()
        assert plan.drawn, f"no disk fault fired at {step}"

        reopened = TopKService(
            store_dir=tmp_path / "store", durability="none"
        )
        # Never a torn journal, never a quarantine, never data loss.
        assert reopened.store.recovery.quarantined == ()
        assert reopened.store.recovery.journal_truncated_bytes == 0
        records = reopened.store.journal_records()
        if expected == "pre":
            assert len(records) == 1
        else:
            assert records == []
        assert reopened.store.pending_cleanings() == []
        assert_payloads_close(
            reopened.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )

    def test_crash_before_tombstone_append_is_pre_state(
        self, tmp_path, oracle
    ):
        from repro.store import RetentionPolicy

        base_id, outcome_id, _ = oracle
        service = self.cleaned_service(tmp_path, base_id)
        service.store.checkpoint()  # drop the clean record: all GC-able
        plan = FaultPlan([FaultEvent(kind="crash", step="gc:tombstone")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.store.gc(RetentionPolicy(keep_last_n=1))
        assert plan.drawn

        reopened = SnapshotStore(tmp_path / "store", durability="none")
        # Phase one never reached the journal: both segments live.
        assert reopened.journal_records() == []
        assert reopened.has_segment(base_id)
        assert reopened.has_segment(outcome_id)

    def test_crash_before_unlink_leaves_tombstone_to_finish_later(
        self, tmp_path, oracle
    ):
        from repro.store import RetentionPolicy

        base_id, outcome_id, _ = oracle
        service = self.cleaned_service(tmp_path, base_id)
        service.store.checkpoint()
        report = service.store.gc(RetentionPolicy(keep_last_n=1))
        assert report["tombstoned"] == [base_id]
        plan = FaultPlan([FaultEvent(kind="crash", step="gc:unlink")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.store.checkpoint()
        assert plan.drawn

        # The tombstone is durable, the file still present; the next
        # successful checkpoint finishes phase two and the one after
        # retires the tombstone record.
        reopened = SnapshotStore(tmp_path / "store", durability="none")
        assert [r["kind"] for r in reopened.journal_records()] == [
            "tombstone"
        ]
        assert reopened.recovery.tombstoned_segments == 1
        assert not reopened.has_segment(base_id)  # not loaded
        first = reopened.checkpoint()
        assert first["unlinked"] == [base_id]
        second = reopened.checkpoint()
        assert second["records_after"] == 0
        assert reopened.has_segment(outcome_id)

    def test_crash_at_lock_acquire_is_pure_pre_state(self, tmp_path, oracle):
        base_id, outcome_id, _ = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        plan = FaultPlan([FaultEvent(kind="crash", step="lock:acquire")])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                service.clean(base_id, CLEAN_SPEC)
        assert plan.drawn

        reopened = SnapshotStore(tmp_path / "store", durability="none")
        assert reopened.journal_records() == []
        assert not reopened.has_segment(outcome_id)
        assert reopened.has_segment(base_id)


# ---------------------------------------------------------------------------
# Resurrection: persist of a tombstoned id retires the tombstone
# ---------------------------------------------------------------------------

# Steps of the tombstone-retirement path inside persist.  Every one is
# a pre-state: the segment write has not begun, so the persist was
# never acknowledged, and the sweep asserts a retry then converges.
RESURRECT_CRASH_POINTS = [
    "resurrect:unlink",
    "resurrect:begin",
    "resurrect:payload",
    "resurrect:written",
    "resurrect:synced",
    "resurrect:renamed",
    "resurrect:committed",
]


class TestResurrection:
    """A re-persisted GC victim must stay durable.

    The failure mode under test: a tombstone surviving a re-persist
    makes recovery skip the id and makes the next checkpoint (seeing
    tombstone plus file) unlink the freshly written segment -- an
    acknowledged durable write silently destroyed.
    """

    def ranked(self, seed: int = 3) -> RankedDatabase:
        return RankedDatabase(small_db(seed), by_value())

    def store_with_tombstone(
        self, root: Path, checkpointed: bool
    ) -> SnapshotStore:
        """A store whose "s1" is tombstoned; phase two ran iff asked."""
        store = SnapshotStore(root, durability="none")
        assert store.persist("s1", self.ranked(3)) is True
        assert store.persist("s2", self.ranked(4)) is True
        report = store.gc(RetentionPolicy(keep_last_n=1))
        assert report["tombstoned"] == ["s1"]
        if checkpointed:
            assert store.checkpoint()["unlinked"] == ["s1"]
        return store

    def test_persist_after_gc_and_checkpoint_stays_durable(self, tmp_path):
        # gc -> checkpoint -> persist(same id) -> checkpoint -> reopen
        # must still load the segment.
        root = tmp_path / "store"
        store = self.store_with_tombstone(root, checkpointed=True)
        assert store.persist("s1", self.ranked(3)) is True
        store.checkpoint()
        store.checkpoint()
        assert store.has_segment("s1")
        reopened = SnapshotStore(root, durability="none")
        assert reopened.has_segment("s1")
        assert reopened.has_segment("s2")
        assert reopened.recovery.quarantined == ()
        assert reopened.recovery.tombstoned_segments == 0
        assert reopened.journal_records() == []

    def test_persist_in_tombstone_window_rewrites_not_adopts(self, tmp_path):
        # Between gc and the first checkpoint the victim's file still
        # exists, but it is logically dead (recovery skipped it
        # unverified; the next checkpoint would unlink it).  persist
        # must return True -- a fresh acknowledged write -- not False
        # ("already durable") for a segment scheduled for deletion.
        root = tmp_path / "store"
        store = self.store_with_tombstone(root, checkpointed=False)
        assert (root / "segments" / "s1.seg").exists()
        assert store.persist("s1", self.ranked(3)) is True
        store.checkpoint()
        store.checkpoint()
        reopened = SnapshotStore(root, durability="none")
        assert reopened.has_segment("s1")
        assert reopened.journal_records() == []

    @pytest.mark.parametrize("step", RESURRECT_CRASH_POINTS)
    def test_resurrect_crash_is_pre_state_and_retry_converges(
        self, tmp_path, step
    ):
        root = tmp_path / "store"
        store = self.store_with_tombstone(root, checkpointed=False)
        plan = FaultPlan([FaultEvent(kind="crash", step=step)])
        with use_faults(plan):
            with pytest.raises(SimulatedCrashError):
                store.persist("s1", self.ranked(3))
        assert plan.drawn, f"no disk fault fired at {step}"

        # Never acknowledged, so the reopen owes nothing: no torn
        # journal, no quarantine, "s1" simply absent.
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.quarantined == ()
        assert reopened.recovery.journal_truncated_bytes == 0
        assert not reopened.has_segment("s1")
        assert reopened.has_segment("s2")
        # A retry converges to a segment that survives checkpoints and
        # a fresh open, whichever side of the rewrite the crash hit.
        assert reopened.persist("s1", self.ranked(3)) is True
        reopened.checkpoint()
        reopened.checkpoint()
        final = SnapshotStore(root, durability="none")
        assert final.has_segment("s1")
        assert final.recovery.tombstoned_segments == 0
        assert final.journal_records() == []


# ---------------------------------------------------------------------------
# Journal replay failure modes
# ---------------------------------------------------------------------------


class TestReplayFailures:
    def test_missing_base_raises_typed_error(self, tmp_path):
        store = SnapshotStore(tmp_path / "store", durability="none")
        store.journal_clean(
            "snap-never-registered", CLEAN_SPEC.to_dict(), "snap-out", "hash"
        )
        with pytest.raises(JournalReplayError, match="snap-never-registered"):
            TopKService(store=store)

    def test_tampered_outcome_raises_typed_error(self, tmp_path, oracle):
        base_id, _, _ = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        # A journal record promising an outcome the spec cannot
        # regenerate: replay must refuse, not serve divergent history.
        service.store.journal_clean(
            base_id, CLEAN_SPEC.to_dict(), "snap-forged", "not-a-real-hash"
        )
        with pytest.raises(JournalReplayError, match="inconsistent"):
            TopKService(store_dir=tmp_path / "store", durability="none")


# ---------------------------------------------------------------------------
# Real process death (SIGKILL) and recovery in a fresh process
# ---------------------------------------------------------------------------

_CHILD_SCRIPT = """
import sys
from repro.api.service import TopKService
from repro.api.specs import CleaningSpec
from repro.db import io

db = io.load_json(sys.argv[1])
service = TopKService(store_dir=sys.argv[2])
base = service.register(db).snapshot_id
service.clean(base, CleaningSpec(k=5, budget=40, execute=True, seed=7))
print("UNREACHABLE")  # the injected kill must have fired by now
"""


class TestKillAndRestart:
    def test_sigkill_mid_write_recovers_in_a_fresh_process(
        self, tmp_path, oracle
    ):
        base_id, outcome_id, oracle_payload = oracle
        db_path = tmp_path / "db.json"
        io.save_json(small_db(), db_path)
        store_dir = tmp_path / "store"

        # skip=1: the child's base registration writes the first
        # segment cleanly; the kill hits the *outcome* segment write,
        # after the journal append.
        plan = FaultPlan(
            [FaultEvent(kind="kill", step="segment:written", skip=1)]
        )
        env = dict(os.environ)
        env["REPRO_FAULTS"] = json.dumps(plan.to_dict())
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(db_path), str(store_dir)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "UNREACHABLE" not in proc.stdout

        # Fresh process (this one) reopens the directory: the base
        # must be durable, the outcome regenerated from the journal,
        # and the recovered top-k identical to the oracle's.
        service = TopKService(store_dir=store_dir)
        assert base_id in service.pool
        assert service.store.has_segment(outcome_id)
        assert service.store.counters()["psr_store_replays"] == 1
        assert_payloads_close(
            service.query(outcome_id, QUERY_SPEC).payload, oracle_payload
        )


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCliStore:
    def test_store_flag_persists_and_status_reports(self, tmp_path, oracle):
        from repro.cli import main

        base_id, outcome_id, _ = oracle
        db_path = tmp_path / "db.json"
        io.save_json(small_db(), db_path)
        store_dir = tmp_path / "store"

        assert (
            main(
                [
                    "clean",
                    "--db",
                    str(db_path),
                    "-k",
                    str(K),
                    "--budget",
                    "40",
                    "--execute",
                    "--execute-seed",
                    "7",
                    "--store",
                    str(store_dir),
                    "--json",
                    str(tmp_path / "clean.json"),
                ]
            )
            == 0
        )
        envelope = json.loads((tmp_path / "clean.json").read_text())
        assert envelope["result"]["payload"]["new_snapshot_id"] == outcome_id
        assert envelope["result"]["counters"]["psr_store_writes"] == 1

        assert (
            main(
                [
                    "store",
                    "--dir",
                    str(store_dir),
                    "--json",
                    str(tmp_path / "status.json"),
                ]
            )
            == 0
        )
        status = json.loads((tmp_path / "status.json").read_text())["status"]
        assert sorted(status["snapshots"]) == sorted((base_id, outcome_id))
        assert status["journal_records"] == 1
        assert status["pending_cleanings"] == []
        assert status["quarantined_files"] == []

    def test_store_compact_gc_and_unlock_actions(self, tmp_path, oracle):
        from repro.cli import main

        base_id, outcome_id, _ = oracle
        service = TopKService(store_dir=tmp_path / "store", durability="none")
        service.register(small_db())
        service.clean(base_id, CLEAN_SPEC)
        store_dir = str(tmp_path / "store")

        compact_json = tmp_path / "compact.json"
        assert (
            main(
                ["store", "compact", "--dir", store_dir, "--json", str(compact_json)]
            )
            == 0
        )
        compact = json.loads(compact_json.read_text())
        assert compact["action"] == "compact"
        assert compact["report"]["compacted"] is True
        assert compact["report"]["records_after"] == 0
        assert compact["status"]["journal_records"] == 0

        gc_json = tmp_path / "gc.json"
        assert (
            main(
                [
                    "store",
                    "gc",
                    "--dir",
                    store_dir,
                    "--keep-last-n",
                    "1",
                    "--pin",
                    outcome_id,
                    "--json",
                    str(gc_json),
                ]
            )
            == 0
        )
        gc = json.loads(gc_json.read_text())
        assert gc["action"] == "gc"
        assert gc["report"]["gc"]["tombstoned"] == [base_id]
        assert gc["report"]["checkpoint"]["unlinked"] == [base_id]
        assert gc["status"]["segment_files"] == 1

        unlock_json = tmp_path / "unlock.json"
        assert (
            main(
                [
                    "store",
                    "unlock",
                    "--dir",
                    store_dir,
                    "--force",
                    "--json",
                    str(unlock_json),
                ]
            )
            == 0
        )
        unlock = json.loads(unlock_json.read_text())
        assert unlock["action"] == "unlock"
        # Every release cleared its own record, so the idle store has
        # no holder left to refuse: force-unlock truncates the empty
        # record and reports nobody recorded.  (Refusal of a live
        # holder is exercised at the lock level, where a holder record
        # can be planted.)
        assert unlock["broken"] is True
        assert unlock["holder"] is None

        # The tombstone record outlives the unlink by one checkpoint
        # (two-phase delete); a second compact retires it.
        assert (
            main(
                ["store", "compact", "--dir", store_dir, "--json", str(compact_json)]
            )
            == 0
        )
        status_json = tmp_path / "final-status.json"
        assert (
            main(["store", "--dir", store_dir, "--json", str(status_json)])
            == 0
        )
        status = json.loads(status_json.read_text())["status"]
        assert status["snapshots"] == [outcome_id]
        assert status["tombstones"] == 0
        assert status["journal_records"] == 0

    def test_query_over_a_recovered_store(self, tmp_path, oracle, capsys):
        from repro.cli import main

        base_id, _, _ = oracle
        db_path = tmp_path / "db.json"
        io.save_json(small_db(), db_path)
        store_dir = tmp_path / "store"
        assert (
            main(
                ["query", "--db", str(db_path), "-k", str(K), "--store", str(store_dir)]
            )
            == 0
        )
        capsys.readouterr()
        # Second invocation recovers the snapshot from disk before the
        # (idempotent) registration -- same id, same answers.
        assert (
            main(
                ["query", "--db", str(db_path), "-k", str(K), "--store", str(store_dir)]
            )
            == 0
        )
        assert "PWS-quality" in capsys.readouterr().out
