"""Unit tests of the snapshot store: codec, atomic writes, recovery.

The crash-point *sweep* (every write step, pre-state or post-state)
and the full service round trips live in ``test_store_recovery.py``;
this file covers the building blocks: the byte codec's corruption
detection, the atomic persist protocol, journal framing, quarantine,
and the ingest validation at the ``repro.db.io`` trust boundary.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.datasets.synthetic import generate_synthetic
from repro.db import io
from repro.db.database import RankedDatabase
from repro.db.ranking import by_value
from repro.exceptions import (
    CorruptSnapshotError,
    InvalidDataError,
    StoreWriteError,
)
from repro.store import (
    JOURNAL_NAME,
    SEGMENT_SUFFIX,
    TMP_PREFIX,
    RetentionPolicy,
    SnapshotStore,
)
from repro.store.format import (
    decode_journal,
    decode_segment,
    encode_journal_record,
    encode_segment,
)
from repro.testing import (
    FaultEvent,
    FaultPlan,
    flip_one_bit,
    use_faults,
)


def ranked_db(seed: int = 3, num_xtuples: int = 12) -> RankedDatabase:
    return RankedDatabase(
        generate_synthetic(num_xtuples=num_xtuples, seed=seed), by_value()
    )


def encoded_segment(snapshot_id: str = "s1") -> bytes:
    ranked = ranked_db()
    import numpy as np

    from repro.db.database import CANONICAL_COLUMNS
    from repro.db.io import database_to_dict
    from repro.db.ranking import ranking_descriptor

    columns = {
        name: (
            getattr(ranked, name).dtype.str,
            np.ascontiguousarray(getattr(ranked, name)).tobytes(),
        )
        for name in CANONICAL_COLUMNS
    }
    return encode_segment(
        snapshot_id=snapshot_id,
        content_hash=ranked.db.content_hash(),
        name=ranked.db.name,
        ranking=ranking_descriptor(ranked.ranking),
        structure=database_to_dict(ranked.db),
        columns=columns,
    )


# ---------------------------------------------------------------------------
# The byte codec
# ---------------------------------------------------------------------------


class TestSegmentCodec:
    def test_round_trip(self):
        data = encoded_segment("s1")
        header, structure, columns = decode_segment(data)
        assert header["snapshot_id"] == "s1"
        assert structure["format"] == "repro.probabilistic_database"
        assert set(columns) == {
            "scores_array",
            "insertion_array",
            "xtuple_indices_array",
            "probabilities_array",
            "completion_array",
        }

    def test_every_single_bitflip_is_detected(self):
        # Not literally every bit (too slow) -- a spread of positions
        # covering magic, header, structure, columns and digest.
        data = encoded_segment()
        for position in range(0, len(data), max(1, len(data) // 64)):
            corrupt = bytearray(data)
            corrupt[position] ^= 0x40
            with pytest.raises(CorruptSnapshotError):
                decode_segment(bytes(corrupt))

    def test_truncation_is_detected_at_any_length(self):
        data = encoded_segment()
        for cut in (0, 1, 4, len(data) // 2, len(data) - 1):
            with pytest.raises(CorruptSnapshotError):
                decode_segment(data[:cut])

    def test_trailing_garbage_is_detected(self):
        data = encoded_segment()
        with pytest.raises(CorruptSnapshotError):
            decode_segment(data + b"\x00")

    def test_flip_one_bit_changes_exactly_one_bit(self):
        data = encoded_segment()
        flipped = flip_one_bit(data)
        assert len(flipped) == len(data)
        diff = [
            bin(a ^ b).count("1") for a, b in zip(data, flipped) if a != b
        ]
        assert diff == [1]


class TestJournalCodec:
    def test_round_trip(self):
        frames = b"".join(
            encode_journal_record({"kind": "clean", "n": i}) for i in range(3)
        )
        records, clean_length, reason = decode_journal(frames)
        assert [r["n"] for r in records] == [0, 1, 2]
        assert clean_length == len(frames)
        assert reason == ""

    def test_torn_tail_is_cut_at_record_boundary(self):
        good = encode_journal_record({"kind": "clean", "n": 0})
        torn = good + encode_journal_record({"kind": "clean", "n": 1})[:-3]
        records, clean_length, reason = decode_journal(torn)
        assert [r["n"] for r in records] == [0]
        assert clean_length == len(good)
        assert "torn" in reason

    def test_corrupt_record_stops_the_clean_prefix(self):
        good = encode_journal_record({"kind": "clean", "n": 0})
        bad = bytearray(encode_journal_record({"kind": "clean", "n": 1}))
        bad[-1] ^= 0xFF  # payload byte: CRC mismatch
        records, clean_length, reason = decode_journal(good + bytes(bad))
        assert [r["n"] for r in records] == [0]
        assert clean_length == len(good)
        assert "CRC" in reason


# ---------------------------------------------------------------------------
# SnapshotStore: atomic writes and recovery
# ---------------------------------------------------------------------------


class TestSnapshotStore:
    def test_persist_then_reopen_recovers(self, tmp_path):
        ranked = ranked_db()
        store = SnapshotStore(tmp_path / "store", durability="none")
        assert store.persist("s1", ranked) is True
        assert store.counters()["psr_store_writes"] == 1

        reopened = SnapshotStore(tmp_path / "store", durability="none")
        assert reopened.recovery.loaded == ("s1",)
        assert reopened.recovery.quarantined == ()
        recovered = reopened.snapshots()["s1"]
        assert recovered.db.content_hash() == ranked.db.content_hash()

    def test_persist_is_idempotent_by_id(self, tmp_path):
        ranked = ranked_db()
        store = SnapshotStore(tmp_path / "store", durability="none")
        assert store.persist("s1", ranked) is True
        assert store.persist("s1", ranked) is False
        assert store.counters()["psr_store_writes"] == 1

    def test_fsync_durability_also_round_trips(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")  # durability="fsync"
        store.persist("s1", ranked_db())
        reopened = SnapshotStore(tmp_path / "store")
        assert reopened.recovery.loaded == ("s1",)

    def test_unserializable_ranking_is_refused(self, tmp_path):
        from repro.db.ranking import custom

        db = generate_synthetic(num_xtuples=5, seed=1)
        ranked = RankedDatabase(db, custom(lambda t: float(t.value)))
        store = SnapshotStore(tmp_path / "store", durability="none")
        with pytest.raises(StoreWriteError, match="descriptor"):
            store.persist("s1", ranked)
        assert store.snapshots() == {}

    def test_bad_durability_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            SnapshotStore(tmp_path / "store", durability="eventually")

    def test_enospc_cleans_up_and_raises_typed(self, tmp_path):
        store = SnapshotStore(tmp_path / "store", durability="none")
        plan = FaultPlan([FaultEvent(kind="enospc", step="segment:written")])
        with use_faults(plan):
            with pytest.raises(StoreWriteError, match="No space left"):
                store.persist("s1", ranked_db())
        assert store.snapshots() == {}
        assert not store.has_segment("s1")
        assert list((tmp_path / "store" / "segments").iterdir()) == []
        # And the path is not poisoned: the retry succeeds.
        assert store.persist("s1", ranked_db()) is True

    def test_temp_files_are_swept_on_open(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        store.persist("s1", ranked_db())
        (root / "segments" / (TMP_PREFIX + "s2")).write_bytes(b"half a write")
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.swept_temp_files == 1
        assert reopened.recovery.loaded == ("s1",)
        assert list((root / "segments").glob(TMP_PREFIX + "*")) == []

    def test_garbage_segment_is_quarantined_not_served(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        store.persist("s1", ranked_db())
        (root / "segments" / ("junk" + SEGMENT_SUFFIX)).write_bytes(
            b"not a segment at all"
        )
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.loaded == ("s1",)
        assert [name for name, _ in reopened.recovery.quarantined] == [
            "junk" + SEGMENT_SUFFIX
        ]
        assert reopened.counters()["psr_store_quarantined"] == 1
        assert (root / "quarantine" / ("junk" + SEGMENT_SUFFIX)).exists()

    def test_tampered_segment_is_quarantined(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        store.persist("s1", ranked_db())
        path = root / "segments" / ("s1" + SEGMENT_SUFFIX)
        path.write_bytes(flip_one_bit(path.read_bytes()))
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.loaded == ()
        assert len(reopened.recovery.quarantined) == 1
        name, reason = reopened.recovery.quarantined[0]
        assert name == "s1" + SEGMENT_SUFFIX
        assert "corrupt" in reason

    def test_misnamed_segment_is_quarantined(self, tmp_path):
        # A segment whose header names a different snapshot than its
        # file name must not be adopted under either identity.
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        store.persist("s1", ranked_db())
        src = root / "segments" / ("s1" + SEGMENT_SUFFIX)
        src.rename(root / "segments" / ("s2" + SEGMENT_SUFFIX))
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.loaded == ()
        assert [name for name, _ in reopened.recovery.quarantined] == [
            "s2" + SEGMENT_SUFFIX
        ]

    def test_shortread_at_open_quarantines(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root, durability="none").persist("s1", ranked_db())
        plan = FaultPlan([FaultEvent(kind="shortread", step="segment:read")])
        with use_faults(plan):
            reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.loaded == ()
        assert len(reopened.recovery.quarantined) == 1

    def test_torn_journal_tail_is_truncated_on_open(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        record = store.journal_clean("s-base", {"k": 5}, "s-out", "hash")
        assert record["base"] == "s-base"
        journal = root / JOURNAL_NAME
        clean_length = journal.stat().st_size
        with open(journal, "ab") as f:
            f.write(encode_journal_record({"kind": "clean"})[:-5])
        reopened = SnapshotStore(root, durability="none")
        assert reopened.recovery.journal_records == 1
        assert reopened.recovery.journal_truncated_bytes > 0
        assert "torn" in reopened.recovery.journal_truncate_reason
        assert journal.stat().st_size == clean_length
        assert reopened.pending_cleanings()[0]["outcome"] == "s-out"

    def test_status_shape(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root, durability="none")
        store.persist("s1", ranked_db())
        store.journal_clean("s1", {"k": 5}, "s-out", "hash")
        status = store.status()
        assert status["snapshots"] == ["s1"]
        assert status["journal_records"] == 1
        assert status["pending_cleanings"] == ["s-out"]
        assert status["quarantined_files"] == []
        assert status["durability"] == "none"
        assert status["counters"]["psr_store_writes"] == 1
        assert status["recovery"]["loaded"] == []
        json.dumps(status)  # the whole envelope must be serializable

    def test_gc_in_use_callback_is_evaluated_under_the_lock(self, tmp_path):
        store = SnapshotStore(tmp_path / "store", durability="none")
        store.persist("s1", ranked_db(3))
        store.persist("s2", ranked_db(4))
        seen = []

        def in_use():
            # Called while gc holds the exclusive file lock: the
            # holder record names this process, proving the set is
            # taken at the victim-selection point, not snapshotted
            # before the sweep began.
            seen.append(store.lock_holder())
            return {"s2"}

        report = store.gc(RetentionPolicy(keep_last_n=0), in_use=in_use)
        assert len(seen) == 1
        assert seen[0] is not None and seen[0]["pid"] == os.getpid()
        assert report["tombstoned"] == ["s1"]
        assert report["protected"] == ["s2"]


# ---------------------------------------------------------------------------
# Ingest validation (the repro.db.io trust boundary)
# ---------------------------------------------------------------------------


def payload_with_probability(p):
    return {
        "format": "repro.probabilistic_database",
        "version": 1,
        "name": "t",
        "xtuples": [
            {
                "xid": "x1",
                "alternatives": [
                    {"tid": "t1", "value": 1.0, "probability": p}
                ],
            }
        ],
    }


class TestIngestValidation:
    @pytest.mark.parametrize(
        "probability",
        [float("nan"), float("inf"), -0.25, 0.0, 1.5, "0.5", None, True],
    )
    def test_bad_probabilities_are_rejected(self, probability):
        with pytest.raises(InvalidDataError, match="probability"):
            io.database_from_dict(payload_with_probability(probability))

    def test_error_names_the_offending_tuple(self):
        with pytest.raises(InvalidDataError, match="'t1'.*'x1'"):
            io.database_from_dict(payload_with_probability(float("nan")))

    def test_duplicate_tuple_id_is_rejected(self):
        payload = payload_with_probability(0.5)
        payload["xtuples"][0]["alternatives"].append(
            {"tid": "t1", "value": 2.0, "probability": 0.3}
        )
        with pytest.raises(InvalidDataError, match="duplicate tuple id"):
            io.database_from_dict(payload)

    def test_duplicate_xtuple_id_is_rejected(self):
        payload = payload_with_probability(0.5)
        payload["xtuples"].append(
            {
                "xid": "x1",
                "alternatives": [
                    {"tid": "t2", "value": 2.0, "probability": 0.3}
                ],
            }
        )
        with pytest.raises(InvalidDataError, match="duplicate x-tuple id"):
            io.database_from_dict(payload)

    def test_empty_xtuple_is_rejected(self):
        payload = payload_with_probability(0.5)
        payload["xtuples"].append({"xid": "x2", "alternatives": []})
        with pytest.raises(InvalidDataError, match="no alternatives"):
            io.database_from_dict(payload)

    def test_missing_xid_is_rejected(self):
        payload = payload_with_probability(0.5)
        del payload["xtuples"][0]["xid"]
        with pytest.raises(InvalidDataError, match="x-tuple #0"):
            io.database_from_dict(payload)

    def test_valid_payload_still_round_trips(self):
        db = generate_synthetic(num_xtuples=8, seed=5)
        assert (
            io.database_from_dict(io.database_to_dict(db)).content_hash()
            == db.content_hash()
        )

    def test_csv_bad_probability_names_the_row(self, tmp_path):
        path = tmp_path / "db.csv"
        io.save_csv(generate_synthetic(num_xtuples=2, seed=1), path)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[3] = lines[3].rsplit(",", 1)[0] + ",nope\n"
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(InvalidDataError, match="row 4"):
            io.load_csv(path)

    def test_csv_nan_probability_is_rejected(self, tmp_path):
        # float("nan") parses fine -- the range check must still fire.
        path = tmp_path / "db.csv"
        io.save_csv(generate_synthetic(num_xtuples=2, seed=1), path)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[2] = lines[2].rsplit(",", 1)[0] + ",nan\n"
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(InvalidDataError, match="row 3"):
            io.load_csv(path)

    def test_csv_duplicate_tid_is_rejected(self, tmp_path):
        path = tmp_path / "db.csv"
        io.save_csv(generate_synthetic(num_xtuples=2, seed=1), path)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines.append(lines[1])  # replay the first data row verbatim
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(InvalidDataError, match="duplicate tuple id"):
            io.load_csv(path)

    def test_csv_empty_xid_is_rejected(self, tmp_path):
        path = tmp_path / "db.csv"
        io.save_csv(generate_synthetic(num_xtuples=2, seed=1), path)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[1] = "," + lines[1].split(",", 1)[1]
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(InvalidDataError, match="row 2"):
            io.load_csv(path)

    def test_csv_round_trips_clean_data(self, tmp_path):
        db = generate_synthetic(num_xtuples=6, seed=2)
        path = tmp_path / "db.csv"
        io.save_csv(db, path)
        assert io.load_csv(path, name=db.name).content_hash() == (
            db.content_hash()
        )
