"""Expected-improvement math: Theorem 2, Lemmas 3-5, brute-force Eq. 17."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.improvement import (
    cumulative_gain,
    expected_improvement,
    expected_improvement_bruteforce,
    expected_quality_after,
    improvement_upper_bound,
    marginal_gain,
    success_probability,
)
from repro.cleaning.model import CleaningPlan, build_cleaning_problem
from repro.core.tp import compute_quality_tp

from strategies import cleaning_problems


def _paper_problem(udb1, budget=100, sc=None, costs=None):
    quality = compute_quality_tp(udb1.ranked(), 2)
    costs = costs or {"S1": 1, "S2": 1, "S3": 1, "S4": 1}
    sc = sc or {"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0}
    return build_cleaning_problem(quality, costs, sc, budget)


class TestBuildingBlocks:
    def test_success_probability(self):
        assert success_probability(0.5, 0) == 0.0
        assert success_probability(0.5, 1) == 0.5
        assert success_probability(0.5, 2) == pytest.approx(0.75)
        assert success_probability(1.0, 1) == 1.0
        assert success_probability(0.0, 100) == 0.0

    def test_negative_operations_rejected(self):
        with pytest.raises(ValueError):
            success_probability(0.5, -1)
        with pytest.raises(ValueError):
            marginal_gain(0.5, -1.0, -1)

    def test_marginal_gain_base_case(self):
        assert marginal_gain(0.5, -1.0, 0) == 0.0

    def test_marginal_gains_telescope_to_cumulative(self):
        g, sc = -0.7, 0.3
        for j in range(1, 8):
            total = math.fsum(marginal_gain(sc, g, i) for i in range(1, j + 1))
            assert total == pytest.approx(cumulative_gain(sc, g, j))

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=-5.0, max_value=-0.01),
        st.integers(1, 30),
    )
    def test_lemma4_monotonic_decrease(self, sc, g, j):
        assert marginal_gain(sc, g, j) >= marginal_gain(sc, g, j + 1) - 1e-15

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=-5.0, max_value=0.0),
        st.integers(0, 30),
    )
    def test_gains_are_nonnegative(self, sc, g, j):
        assert marginal_gain(sc, g, j) >= 0.0
        assert cumulative_gain(sc, g, j) >= 0.0


class TestTheorem2OnPaperExample:
    def test_cleaning_s3_once_with_certain_success(self, udb1):
        # pclean(S3) with P=1: improvement = -g(S3) exactly.
        problem = _paper_problem(udb1)
        g = dict(zip(("S1", "S2", "S3", "S4"), problem.g_by_xtuple))
        plan = CleaningPlan(operations={"S3": 1})
        assert expected_improvement(problem, plan) == pytest.approx(-g["S3"])

    def test_expected_quality_after_matches_bruteforce(self, udb1):
        problem = _paper_problem(udb1)
        plan = CleaningPlan(operations={"S3": 1})
        brute = expected_improvement_bruteforce(udb1, problem, plan)
        assert expected_improvement(problem, plan) == pytest.approx(
            brute, abs=1e-9
        )
        assert expected_quality_after(problem, plan) == pytest.approx(
            problem.quality + brute, abs=1e-9
        )

    def test_cleaning_everything_yields_zero_entropy_in_expectation(self, udb1):
        # P=1 probes of every uncertain x-tuple: expected improvement
        # equals |S|; expected cleaned quality is zero... but only via
        # Theorem 2's linearity (true quality of each outcome varies).
        problem = _paper_problem(udb1)
        plan = CleaningPlan(operations={"S1": 1, "S2": 1, "S3": 1})
        assert expected_improvement(problem, plan) == pytest.approx(
            -problem.quality, abs=1e-9
        )
        assert expected_quality_after(problem, plan) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_multiple_operations_raise_success_odds(self, udb1):
        problem = _paper_problem(udb1, sc={"S1": 0.3, "S2": 0.3, "S3": 0.3, "S4": 0.3})
        one = expected_improvement(problem, CleaningPlan(operations={"S3": 1}))
        three = expected_improvement(problem, CleaningPlan(operations={"S3": 3}))
        assert three > one
        g3 = problem.g_by_xtuple[2]
        assert three == pytest.approx(-(1 - 0.7**3) * g3)

    def test_cleaning_certain_xtuple_gains_nothing(self, udb1):
        problem = _paper_problem(udb1)
        plan = CleaningPlan(operations={"S4": 5})
        assert expected_improvement(problem, plan) == 0.0

    def test_lemma5_zero_g_xtuples_excluded_from_candidates(self, udb1):
        problem = _paper_problem(udb1)
        candidates = {problem.xtuple_id(l) for l in problem.candidate_indices()}
        assert candidates == {"S1", "S2", "S3"}


class TestTheorem2VsBruteforce:
    @settings(max_examples=40, deadline=None)
    @given(cleaning_problems(max_xtuples=3, max_budget=8))
    def test_matches_eq17_enumeration(self, db_problem):
        db, problem = db_problem
        # Probe the first two candidates once or twice each.
        candidates = problem.candidate_indices()[:2]
        if not candidates:
            return
        plan = CleaningPlan(
            operations={
                problem.xtuple_id(l): (i % 2) + 1
                for i, l in enumerate(candidates)
            }
        )
        fast = expected_improvement(problem, plan)
        brute = expected_improvement_bruteforce(db, problem, plan)
        assert fast == pytest.approx(brute, abs=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(cleaning_problems())
    def test_improvement_bounded(self, db_problem):
        _, problem = db_problem
        candidates = problem.candidate_indices()
        plan = CleaningPlan(
            operations={problem.xtuple_id(l): 3 for l in candidates}
        )
        improvement = expected_improvement(problem, plan)
        assert -1e-12 <= improvement <= improvement_upper_bound(problem) + 1e-9
        assert improvement_upper_bound(problem) <= -problem.quality + 1e-9

    def test_empty_plan_improves_nothing(self, udb1):
        problem = _paper_problem(udb1)
        assert expected_improvement(problem, CleaningPlan(operations={})) == 0.0
