"""TP quality algorithm: Theorem 1 validation and sharing semantics."""

import math

import pytest
from hypothesis import given, settings

from repro.core.pw import compute_quality_pw
from repro.core.tp import (
    compute_quality_tp,
    short_result_probability,
)
from repro.core.weights import compute_weights, weight_of
from repro.datasets.paper import UDB1_TOP2_QUALITY, UDB2_TOP2_QUALITY
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple
from repro.exceptions import InvalidQueryError
from repro.queries.psr import compute_rank_probabilities

from strategies import databases_with_k

ABS = 1e-9


class TestPaperVectors:
    def test_udb1(self, udb1):
        assert compute_quality_tp(udb1.ranked(), 2).quality == pytest.approx(
            UDB1_TOP2_QUALITY, abs=ABS
        )

    def test_udb2(self, udb2):
        assert compute_quality_tp(udb2.ranked(), 2).quality == pytest.approx(
            UDB2_TOP2_QUALITY, abs=ABS
        )

    def test_g_values_sum_to_quality(self, udb1):
        result = compute_quality_tp(udb1.ranked(), 2)
        assert math.fsum(result.g_by_xtuple()) == pytest.approx(
            result.quality, abs=ABS
        )

    def test_certain_xtuple_contributes_zero(self, udb1):
        result = compute_quality_tp(udb1.ranked(), 2)
        g = result.g_by_xtuple()
        s4 = udb1.ranked().xtuple_ids.index("S4")
        assert g[s4] == 0.0


class TestWeights:
    def test_certain_tuple_weight_is_zero(self):
        # e = 1: log2(1) + (Y(0) - Y(1)) / 1 = 0.
        assert weight_of(1.0, 1.0) == 0.0

    def test_single_uncertain_tuple_weight(self):
        # x-tuple {e=0.5}: ω = log2(0.5) + (Y(0.5) - Y(1)) / 0.5 = -1 - 1 = -2.
        assert weight_of(0.5, 0.5) == pytest.approx(-2.0)

    def test_weights_depend_only_on_own_xtuple(self):
        # Same x-tuple composition, different other x-tuples: equal ω.
        db1 = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 10.0, 0.6), ("t1", 5.0, 0.4)]),
                make_xtuple("b", [("t2", 7.0, 1.0)]),
            ]
        )
        db2 = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 10.0, 0.6), ("t1", 5.0, 0.4)]),
                make_xtuple("b", [("t2", 7.0, 0.5), ("t3", 6.0, 0.5)]),
            ]
        )
        w1 = dict(zip((t.tid for t in db1.ranked().order), compute_weights(db1.ranked())))
        w2 = dict(zip((t.tid for t in db2.ranked().order), compute_weights(db2.ranked())))
        assert w1["t0"] == pytest.approx(w2["t0"])
        assert w1["t1"] == pytest.approx(w2["t1"])

    def test_weights_are_nonpositive(self, udb1):
        # ω_i <= 0: each tuple's contribution can only lower quality.
        for w in compute_weights(udb1.ranked()):
            assert w <= 1e-12

    def test_upto_limits_output(self, udb1):
        assert len(compute_weights(udb1.ranked(), upto=3)) == 3


class TestSharing:
    def test_shared_rank_probabilities_give_same_quality(self, udb1):
        ranked = udb1.ranked()
        rank_probs = compute_rank_probabilities(ranked, 2)
        shared = compute_quality_tp(ranked, 2, rank_probabilities=rank_probs)
        fresh = compute_quality_tp(ranked, 2)
        assert shared.quality == pytest.approx(fresh.quality, abs=ABS)
        assert shared.rank_probabilities is rank_probs

    def test_mismatched_k_rejected(self, udb1):
        ranked = udb1.ranked()
        rank_probs = compute_rank_probabilities(ranked, 3)
        with pytest.raises(InvalidQueryError):
            compute_quality_tp(ranked, 2, rank_probabilities=rank_probs)

    def test_mismatched_view_rejected(self, udb1, udb2):
        rank_probs = compute_rank_probabilities(udb1.ranked(), 2)
        with pytest.raises(InvalidQueryError):
            compute_quality_tp(udb2.ranked(), 2, rank_probabilities=rank_probs)


class TestSupportCheck:
    def test_complete_database_passes(self, udb1):
        assert short_result_probability(udb1.ranked(), 2) == pytest.approx(0.0)
        compute_quality_tp(udb1.ranked(), 2, check_support=True)

    def test_incomplete_database_fails_check(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 2.0, 0.5)]),
                make_xtuple("b", [("t1", 1.0, 0.5)]),
            ]
        )
        assert short_result_probability(db.ranked(), 2) == pytest.approx(0.75)
        with pytest.raises(InvalidQueryError):
            compute_quality_tp(db.ranked(), 2, check_support=True)

    def test_k_above_xtuple_count_fails_check(self, udb1):
        with pytest.raises(InvalidQueryError):
            compute_quality_tp(udb1.ranked(), 5, check_support=True)


class TestTheorem1Equivalence:
    @settings(max_examples=120, deadline=None)
    @given(databases_with_k(complete=True))
    def test_tp_matches_pw_on_complete_databases(self, db_k):
        db, k = db_k
        if k > db.num_xtuples:
            return  # Theorem 1 needs full-length results
        ranked = db.ranked()
        assert compute_quality_tp(ranked, k).quality == pytest.approx(
            compute_quality_pw(ranked, k).quality, abs=1e-8
        )

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(complete=True))
    def test_quality_is_nonpositive(self, db_k):
        db, k = db_k
        if k > db.num_xtuples:
            return
        assert compute_quality_tp(db.ranked(), k).quality <= 1e-9
