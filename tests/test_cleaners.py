"""The four planners: DP optimality, Greedy quality, Rand* behaviour."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.dp import DPCleaner, build_groups
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import CleaningPlan, build_cleaning_problem
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner
from repro.core.tp import compute_quality_tp

from strategies import cleaning_problems

ALL_PLANNERS = [DPCleaner(), GreedyCleaner(), RandPCleaner(), RandUCleaner()]


def _paper_problem(udb1, budget=4, sc=None, costs=None):
    quality = compute_quality_tp(udb1.ranked(), 2)
    costs = costs or {"S1": 2, "S2": 2, "S3": 1, "S4": 3}
    sc = sc or {"S1": 0.6, "S2": 0.7, "S3": 0.8, "S4": 1.0}
    return build_cleaning_problem(quality, costs, sc, budget)


def _optimal_by_exhaustion(problem):
    """Try every (X, M) combination within budget. Tiny inputs only."""
    candidates = problem.candidate_indices()
    best = 0.0
    ranges = [range(problem.max_operations(l) + 1) for l in candidates]
    for combo in itertools.product(*ranges):
        cost = sum(
            problem.costs[l] * m for l, m in zip(candidates, combo)
        )
        if cost > problem.budget:
            continue
        plan = CleaningPlan(
            operations={
                problem.xtuple_id(l): m
                for l, m in zip(candidates, combo)
                if m > 0
            }
        )
        best = max(best, expected_improvement(problem, plan))
    return best


class TestDPCleaner:
    def test_paper_example_plan_is_optimal(self, udb1):
        problem = _paper_problem(udb1)
        plan = DPCleaner().plan(problem)
        assert plan.is_feasible(problem)
        assert expected_improvement(problem, plan) == pytest.approx(
            _optimal_by_exhaustion(problem), abs=1e-9
        )

    def test_zero_budget_yields_empty_plan(self, udb1):
        problem = _paper_problem(udb1, budget=0)
        assert len(DPCleaner().plan(problem)) == 0

    def test_plan_never_includes_certain_xtuples(self, udb1):
        problem = _paper_problem(udb1, budget=50)
        plan = DPCleaner().plan(problem)
        assert "S4" not in plan

    def test_build_groups_respects_lemma5(self, udb1):
        problem = _paper_problem(udb1)
        indices = [l for l, _ in build_groups(problem)]
        assert set(problem.xtuple_id(l) for l in indices) == {"S1", "S2", "S3"}

    def test_pruning_keeps_value_close(self, udb1):
        problem = _paper_problem(udb1, budget=200)
        exact = expected_improvement(problem, DPCleaner().plan(problem))
        pruned = expected_improvement(
            problem, DPCleaner(prune_tolerance=1e-9).plan(problem)
        )
        assert pruned == pytest.approx(exact, rel=1e-6)

    def test_negative_prune_tolerance_rejected(self):
        with pytest.raises(ValueError):
            DPCleaner(prune_tolerance=-0.1)

    def test_python_and_numpy_backends_agree(self, udb1):
        problem = _paper_problem(udb1, budget=9)
        a = DPCleaner(use_numpy=True).plan(problem)
        b = DPCleaner(use_numpy=False).plan(problem)
        assert expected_improvement(problem, a) == pytest.approx(
            expected_improvement(problem, b), abs=1e-12
        )

    @settings(max_examples=40, deadline=None)
    @given(cleaning_problems(max_xtuples=3, max_budget=10))
    def test_dp_is_optimal_on_random_instances(self, db_problem):
        _, problem = db_problem
        plan = DPCleaner().plan(problem)
        assert plan.is_feasible(problem)
        assert expected_improvement(problem, plan) == pytest.approx(
            _optimal_by_exhaustion(problem), abs=1e-9
        )


class TestGreedyCleaner:
    def test_paper_example_close_to_optimal(self, udb1):
        problem = _paper_problem(udb1, budget=10)
        dp_value = expected_improvement(problem, DPCleaner().plan(problem))
        greedy_value = expected_improvement(
            problem, GreedyCleaner().plan(problem)
        )
        assert greedy_value <= dp_value + 1e-12
        assert greedy_value >= 0.8 * dp_value

    def test_greedy_takes_best_rate_first(self, udb1):
        # S3 has the best improvement-per-cost; with budget 1 only S3 fits.
        problem = _paper_problem(udb1, budget=1)
        plan = GreedyCleaner().plan(problem)
        assert plan.operations == {"S3": 1}

    def test_skips_unaffordable_and_continues(self, udb1):
        # Budget 3 with S1/S2 costing 2 and S3 costing 1: after taking a
        # cost-2 item only cost-1 ladders still fit.
        problem = _paper_problem(udb1, budget=3)
        plan = GreedyCleaner().plan(problem)
        assert plan.is_feasible(problem)
        assert plan.total_cost(problem) == 3

    @settings(max_examples=60, deadline=None)
    @given(cleaning_problems())
    def test_feasible_and_bounded_by_dp(self, db_problem):
        _, problem = db_problem
        greedy_plan = GreedyCleaner().plan(problem)
        assert greedy_plan.is_feasible(problem)
        dp_value = expected_improvement(problem, DPCleaner().plan(problem))
        greedy_value = expected_improvement(problem, greedy_plan)
        assert greedy_value <= dp_value + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(cleaning_problems())
    def test_greedy_within_one_item_of_optimal(self, db_problem):
        # Classical knapsack-greedy bound: adding the best single
        # unpicked item to greedy's value reaches the optimum.
        _, problem = db_problem
        greedy_value = expected_improvement(
            problem, GreedyCleaner().plan(problem)
        )
        dp_value = expected_improvement(problem, DPCleaner().plan(problem))
        best_single = 0.0
        for l in problem.candidate_indices():
            from repro.cleaning.improvement import marginal_gain

            best_single = max(
                best_single,
                marginal_gain(
                    problem.sc_probabilities[l], problem.g_by_xtuple[l], 1
                ),
            )
        assert greedy_value + best_single >= dp_value - 1e-9


class TestRandomCleaners:
    def test_seeded_plans_are_reproducible(self, udb1):
        problem = _paper_problem(udb1, budget=20)
        for cls in (RandUCleaner, RandPCleaner):
            a = cls(seed=7).plan(problem)
            b = cls(seed=7).plan(problem)
            assert a.operations == b.operations

    def test_different_seeds_vary(self, udb1):
        problem = _paper_problem(udb1, budget=20)
        plans = {
            tuple(sorted(RandUCleaner(seed=s).plan(problem).operations.items()))
            for s in range(10)
        }
        assert len(plans) > 1

    def test_budget_exhausted(self, udb1):
        # With a cost-1 candidate (S3) the whole budget must be spent.
        problem = _paper_problem(udb1, budget=17)
        for planner in (RandUCleaner(seed=3), RandPCleaner(seed=3)):
            plan = planner.plan(problem)
            assert plan.total_cost(problem) == 17

    def test_candidates_all_includes_zero_gain_xtuples(self, udb1):
        problem = _paper_problem(udb1, budget=30)
        plan = RandUCleaner(seed=1, candidates="all").plan(problem)
        # With "all", the certain x-tuple S4 may be probed.
        assert plan.is_feasible(problem)

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            RandUCleaner(candidates="some")
        with pytest.raises(ValueError):
            RandPCleaner(candidates="some")

    def test_randp_prefers_high_topk_mass(self, udb1):
        # S2 carries the largest top-2 mass (0.7); over many draws RandP
        # must probe S2 at least as much as the low-mass S3 ladder when
        # costs are equal.
        quality = compute_quality_tp(udb1.ranked(), 2)
        problem = build_cleaning_problem(
            quality,
            {"S1": 1, "S2": 1, "S3": 1, "S4": 1},
            {"S1": 0.5, "S2": 0.5, "S3": 0.5, "S4": 0.5},
            budget=400,
        )
        plan = RandPCleaner(seed=11).plan(problem)
        assert plan.count("S2") > plan.count("S3")

    @settings(max_examples=40, deadline=None)
    @given(cleaning_problems(), st.integers(0, 3))
    def test_random_plans_are_feasible(self, db_problem, seed):
        _, problem = db_problem
        for cls in (RandUCleaner, RandPCleaner):
            plan = cls(seed=seed).plan(problem)
            assert plan.is_feasible(problem)


class TestPlannerOrdering:
    @settings(max_examples=30, deadline=None)
    @given(cleaning_problems(max_budget=20), st.integers(0, 2))
    def test_dp_dominates_every_other_planner(self, db_problem, seed):
        _, problem = db_problem
        dp_value = expected_improvement(problem, DPCleaner().plan(problem))
        for planner in (
            GreedyCleaner(),
            RandPCleaner(seed=seed),
            RandUCleaner(seed=seed),
        ):
            value = expected_improvement(problem, planner.plan(problem))
            assert value <= dp_value + 1e-9
