"""Structural tests of the figure experiments at a micro scale.

These do not re-check the paper's shapes (the benchmark suite does);
they verify each experiment function produces a well-formed table with
the expected axes, fast enough to live in the unit suite.
"""

import pytest

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import BenchScale
from repro.bench import workloads

MICRO = BenchScale(
    name="micro",
    synth_m=30,
    clean_m=60,
    mov_m=60,
    k_max=20,
    budget_max=100,
    pwr_max_results=5_000,
    repeats=1,
)

#: Experiments cheap enough to execute at micro scale in CI-unit time.
FAST_FIGURES = [
    "fig2_3",
    "fig4a",
    "fig4c",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig6a",
    "fig6c",
    "fig6d",
    "fig6e",
    "fig6f",
    "fig6g",
]


class TestRegistry:
    def test_all_paper_figures_covered(self):
        expected = {
            "fig2_3",
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
            "fig5a", "fig5b", "fig5c", "fig5d",
            "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g",
        }
        assert set(ALL_FIGURES) == expected


@pytest.mark.parametrize("name", FAST_FIGURES)
def test_figure_produces_table(name):
    table = ALL_FIGURES[name](MICRO)
    assert table.experiment == name
    assert table.rows, f"{name} produced no rows"
    for row in table.rows:
        assert len(row) == len(table.columns)


class TestSpecificAxes:
    def test_fig6a_budgets_respect_scale(self):
        table = ALL_FIGURES["fig6a"](MICRO)
        assert all(c <= MICRO.budget_max for c in table.column("C"))

    def test_fig4a_k_sweep_respects_scale(self):
        table = ALL_FIGURES["fig4a"](MICRO)
        assert all(k <= MICRO.k_max for k in table.column("k"))

    def test_fig5_sharing_ks(self):
        table = ALL_FIGURES["fig5a"](MICRO)
        assert table.column("k") == [15]  # 30..100 exceed micro's k_max=20


class TestWorkloadCaching:
    def test_synthetic_db_cached_by_parameters(self):
        a = workloads.synthetic_db(30)
        b = workloads.synthetic_db(30)
        c = workloads.synthetic_db(31)
        assert a is b
        assert a is not c

    def test_ranked_views_cached(self):
        assert workloads.synthetic_ranked(30) is workloads.synthetic_ranked(30)

    def test_quality_cached_per_k(self):
        a = workloads.synthetic_quality(30, 3)
        b = workloads.synthetic_quality(30, 3)
        c = workloads.synthetic_quality(30, 4)
        assert a is b
        assert a is not c

    def test_costs_are_stable_tuples(self):
        costs = dict(workloads.synthetic_costs(30))
        db = workloads.synthetic_db(30)
        assert set(costs) == {xt.xid for xt in db.xtuples}
        assert all(1 <= c <= 10 for c in costs.values())

    def test_cleaning_problem_construction(self):
        problem = workloads.synthetic_cleaning_problem(30, 3, 50)
        assert problem.budget == 50
        assert problem.k == 3
        assert problem.num_xtuples == 30
