"""Every exact number the paper states, asserted in one place.

If any of these fail, the reproduction has drifted from the paper.
Sources are cited per test (section / figure / table of Mo et al.,
ICDE 2013).
"""

import math

import pytest

from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import CleaningPlan, build_cleaning_problem
from repro.core.pw import compute_quality_pw
from repro.core.pwr import compute_quality_pwr
from repro.core.tp import compute_quality_tp
from repro.db.possible_worlds import world_probability
from repro.queries import ptk, utopk
from repro.queries.psr import compute_rank_probabilities


class TestSectionI:
    def test_table1_dimensions(self, udb1):
        """Table I: 4 sensors, 7 tuples, S4 certain at 26 degrees."""
        assert udb1.num_xtuples == 4
        assert udb1.num_tuples == 7
        assert udb1.xtuple("S4").is_certain
        assert udb1.tuple("t6").value == 26.0

    def test_sensor_s1_reading(self, udb1):
        """Section I: 'the reading of sensor S1 is 21C with probability 0.6'."""
        assert udb1.tuple("t0").value == 21.0
        assert udb1.tuple("t0").probability == 0.6

    def test_ptk_example(self, udb1):
        """Section I: k=2, T=0.4 -> answer {t1, t2, t5}."""
        answer = ptk.evaluate(udb1.ranked(), 2, 0.4)
        assert set(answer.tids) == {"t1", "t2", "t5"}

    def test_possible_world_probability(self, udb1):
        """Section I: W = {t0, t3, t4, t6} has probability
        0.6 x 0.3 x 0.4 x 1 = 0.072."""
        assert world_probability(udb1, ["t0", "t3", "t4", "t6"]) == (
            pytest.approx(0.072)
        )

    def test_quality_scores(self, udb1, udb2):
        """Section I: udb1 quality -2.55, udb2 quality -1.85."""
        assert compute_quality_pw(udb1.ranked(), 2).quality == pytest.approx(
            -2.55, abs=0.005
        )
        assert compute_quality_pw(udb2.ranked(), 2).quality == pytest.approx(
            -1.85, abs=0.005
        )


class TestSectionIII:
    def test_lemma1_example(self, udb1):
        """Section III-B: pw-result (t1, t2) has probability
        0.112 + 0.168 = 0.28."""
        distribution = compute_quality_pwr(
            udb1.ranked(), 2, collect=True
        ).distribution
        assert distribution[("t1", "t2")] == pytest.approx(0.28)

    def test_figure2_has_seven_results(self, udb1):
        assert compute_quality_pwr(udb1.ranked(), 2).num_results == 7

    def test_figure3_has_four_results(self, udb2):
        assert compute_quality_pwr(udb2.ranked(), 2).num_results == 4

    def test_pw_results_sum_to_one(self, udb1):
        """Below Definition 1: Σ_r Pr(r) = 1."""
        distribution = compute_quality_pwr(
            udb1.ranked(), 2, collect=True
        ).distribution
        assert math.fsum(distribution.values()) == pytest.approx(1.0)


class TestSectionIV:
    def test_three_algorithms_agree_within_1e8(self, udb1, udb2):
        """Section VI: 'absolute difference between the quality scores
        calculated by different methods is always smaller than 1e-8'."""
        for db in (udb1, udb2):
            ranked = db.ranked()
            pw = compute_quality_pw(ranked, 2).quality
            pwr = compute_quality_pwr(ranked, 2).quality
            tp = compute_quality_tp(ranked, 2).quality
            assert abs(pw - pwr) < 1e-8
            assert abs(pw - tp) < 1e-8

    def test_theorem1_tuple_form_on_udb1(self, udb1):
        """Theorem 1: S = Σ ω_i p_i reproduces the entropy exactly."""
        result = compute_quality_tp(udb1.ranked(), 2)
        rank_probs = result.rank_probabilities
        manual = math.fsum(
            w * p
            for w, p in zip(result.weights_prefix, rank_probs.topk_prefix)
        )
        assert manual == pytest.approx(
            compute_quality_pw(udb1.ranked(), 2).quality, abs=1e-9
        )

    def test_lemma2_stops_after_k_saturated_xtuples(self, udb1):
        """Lemma 2 / early stop: with k=1, scanning can stop once one
        x-tuple is exhausted above the scan point."""
        psr = compute_rank_probabilities(udb1.ranked(), 1)
        assert psr.cutoff < udb1.num_tuples


class TestSectionV:
    def test_definition5_cleaning_s3_gives_udb2(self, udb1, udb2):
        """Definition 5 / Tables I-II: successful pclean(S3) revealing
        t5 turns udb1 into udb2."""
        s3 = udb1.xtuple("S3")
        cleaned = udb1.with_xtuple_replaced("S3", s3.collapsed_to("t5"))
        assert compute_quality_pw(cleaned.ranked(), 2).quality == (
            pytest.approx(compute_quality_pw(udb2.ranked(), 2).quality)
        )

    def test_theorem2_single_xtuple_certain_success(self, udb1):
        """With P=1 and M=1 the expected improvement of cleaning S3
        equals -g(S3) -- and the realized udb2 improvement averages to
        it across the e_i-weighted outcomes."""
        quality = compute_quality_tp(udb1.ranked(), 2)
        problem = build_cleaning_problem(
            quality,
            {xid: 1 for xid in ("S1", "S2", "S3", "S4")},
            {xid: 1.0 for xid in ("S1", "S2", "S3", "S4")},
            budget=1,
        )
        improvement = expected_improvement(
            problem, CleaningPlan(operations={"S3": 1})
        )
        # Outcome 1 (p=0.6): reveal t5 -> udb2, quality -1.8522.
        # Outcome 2 (p=0.4): reveal t4 -> quality of that database.
        udb2_like = udb1.with_xtuple_replaced(
            "S3", udb1.xtuple("S3").collapsed_to("t5")
        )
        udb_t4 = udb1.with_xtuple_replaced(
            "S3", udb1.xtuple("S3").collapsed_to("t4")
        )
        expected_after = 0.6 * compute_quality_pw(
            udb2_like.ranked(), 2
        ).quality + 0.4 * compute_quality_pw(udb_t4.ranked(), 2).quality
        assert improvement == pytest.approx(
            expected_after - quality.quality, abs=1e-9
        )


class TestFigure2Mode:
    def test_most_probable_result(self, udb1):
        """Figure 2's tallest bar: (t1, t2) at 0.28."""
        answer = utopk.evaluate(udb1.ranked(), 2)
        assert answer.result == ("t1", "t2")
        assert answer.probability == pytest.approx(0.28)
