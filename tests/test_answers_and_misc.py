"""Answer value objects, exception hierarchy, and the run_all runner."""

import pytest

from repro.exceptions import (
    InfeasibleTargetError,
    InvalidCleaningProblemError,
    InvalidDatabaseError,
    InvalidQueryError,
    ReproError,
)
from repro.queries.answers import (
    GlobalTopkAnswer,
    PTkAnswer,
    RankWinner,
    UkRanksAnswer,
    UTopkAnswer,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidDatabaseError,
            InvalidQueryError,
            InvalidCleaningProblemError,
            InfeasibleTargetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestAnswerObjects:
    def test_ukranks_accessors(self):
        answer = UkRanksAnswer(
            k=2,
            winners=(
                RankWinner(rank=1, tid="a", probability=0.5),
                RankWinner(rank=2, tid="a", probability=0.3),
            ),
        )
        assert answer.tids == ["a", "a"]  # duplicates allowed by semantics
        assert answer.winner_at(2).probability == 0.3
        with pytest.raises(KeyError):
            answer.winner_at(3)

    def test_ptk_container_protocol(self):
        answer = PTkAnswer(k=2, threshold=0.4, members=(("a", 0.9), ("b", 0.5)))
        assert "a" in answer
        assert "c" not in answer
        assert len(answer) == 2
        assert answer.tids == ["a", "b"]

    def test_global_topk_container_protocol(self):
        answer = GlobalTopkAnswer(k=2, members=(("a", 0.9),))
        assert "a" in answer
        assert "z" not in answer
        assert len(answer) == 1

    def test_utopk_fields(self):
        answer = UTopkAnswer(k=2, result=("a", "b"), probability=0.4)
        assert answer.result == ("a", "b")
        assert answer.probability == 0.4

    def test_answers_are_immutable(self):
        answer = PTkAnswer(k=1, threshold=0.1, members=())
        with pytest.raises(AttributeError):
            answer.k = 3


class TestRunAllScript:
    def test_single_experiment(self, tmp_path, capsys, monkeypatch):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).parent.parent / "benchmarks" / "run_all.py"
        )
        spec = importlib.util.spec_from_file_location("run_all", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        code = module.main(
            [
                "--scale",
                "quick",
                "--only",
                "fig2_3",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig2_3" in out
        assert (tmp_path / "fig2_3.txt").exists()

    def test_unknown_experiment_rejected(self, tmp_path):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).parent.parent / "benchmarks" / "run_all.py"
        )
        spec = importlib.util.spec_from_file_location("run_all2", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        with pytest.raises(SystemExit):
            module.main(["--only", "fig99", "--results-dir", str(tmp_path)])
