"""NumPy-vs-Python backend cross-validation (and both vs the oracle).

The vectorized kernels must be bit-compatible with the scalar
reference implementation up to floating-point reassociation: every
hypothesis case checks agreement within 1e-9 absolute for PSR rank
probabilities, top-k probabilities, TP weights, quality scores and the
per-x-tuple ``g(l, D)`` aggregation -- plus explicit constructions for
the saturation / early-stop (Lemma 2) and high-sibling-mass paths.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.backend import current_backend, set_backend, use_backend
from repro.core.tp import compute_quality_tp
from repro.core.weights import compute_weights
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple
from repro.queries.brute_force import (
    rank_probabilities_by_enumeration,
    topk_probabilities_by_enumeration,
)
from repro.queries.psr import compute_rank_probabilities

from strategies import databases_with_k

ABS = 1e-9


def _assert_backends_agree(db, k):
    ranked = db.ranked()
    reference = compute_rank_probabilities(ranked, k, backend="python")
    vectorized = compute_rank_probabilities(ranked, k, backend="numpy")
    assert reference.backend == "python"
    assert vectorized.backend == "numpy"
    assert reference.cutoff == vectorized.cutoff
    assert reference.rho_prefix == pytest.approx(
        vectorized.rho_prefix, abs=ABS
    )
    assert reference.topk_prefix == pytest.approx(
        vectorized.topk_prefix, abs=ABS
    )
    assert reference.topk_probability_by_xtuple() == pytest.approx(
        vectorized.topk_probability_by_xtuple(), abs=ABS
    )
    return ranked, reference, vectorized


class TestPSRCrossValidation:
    @settings(max_examples=120, deadline=None)
    @given(databases_with_k())
    def test_backends_agree_on_random_databases(self, db_k):
        _assert_backends_agree(*db_k)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(complete=False, max_xtuples=5))
    def test_backends_agree_on_incomplete_databases(self, db_k):
        # Incomplete x-tuples never saturate: exercises long-lived open
        # factors and the backward (q > 1/2) division path.
        _assert_backends_agree(*db_k)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_numpy_kernel_matches_possible_world_oracle(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        vectorized = compute_rank_probabilities(ranked, k, backend="numpy")
        expected_rho = rank_probabilities_by_enumeration(ranked, k)
        expected_topk = topk_probabilities_by_enumeration(ranked, k)
        for t in ranked.order:
            assert vectorized.rho(t.tid) == pytest.approx(
                expected_rho[t.tid], abs=ABS
            )
            assert vectorized.topk_probability(t.tid) == pytest.approx(
                expected_topk[t.tid], abs=ABS
            )


class TestPSREdgeCases:
    def test_lemma2_early_stop_same_cutoff(self):
        # k certain x-tuples on top: both kernels must stop scanning at
        # the same position and zero out everything below.
        xtuples = [
            make_xtuple(f"c{i}", [(f"top{i}", 100.0 - i, 1.0)]) for i in range(3)
        ]
        xtuples.append(
            make_xtuple("tail", [("low1", 5.0, 0.5), ("low2", 4.0, 0.5)])
        )
        db = ProbabilisticDatabase(xtuples)
        _, reference, vectorized = _assert_backends_agree(db, 3)
        assert reference.cutoff == 3
        assert vectorized.cutoff == 3
        assert vectorized.topk_probability("low1") == 0.0

    def test_saturating_sibling_rows_are_zero(self):
        # Second alternative saturates its x-tuple; the third exists
        # with numerically zero probability in both kernels.
        db = ProbabilisticDatabase(
            [
                make_xtuple(
                    "s", [("a", 9.0, 0.5), ("b", 8.0, 0.5), ("c", 7.0, 1e-13)]
                ),
                make_xtuple("o", [("d", 8.5, 0.6)]),
            ]
        )
        _, reference, vectorized = _assert_backends_agree(db, 2)
        assert vectorized.topk_probability("c") == 0.0

    def test_high_sibling_mass_rebuild_path(self):
        # Last sibling sees q = 0.9 > 1/2: the reference kernel
        # rebuilds, the numpy kernel divides backward.
        db = ProbabilisticDatabase(
            [
                make_xtuple(
                    "big",
                    [("a", 10.0, 0.45), ("b", 9.0, 0.45), ("c", 8.0, 0.1)],
                ),
                make_xtuple("other", [("d", 9.5, 0.6), ("e", 7.0, 0.4)]),
            ]
        )
        for k in (1, 2, 3):
            _assert_backends_agree(db, k)

    def test_interleaved_open_xtuples(self):
        # Three x-tuples open simultaneously: exercises the open
        # polynomial growing and shrinking around close events.
        db = ProbabilisticDatabase(
            [
                make_xtuple(
                    "x", [("x1", 10.0, 0.3), ("x2", 8.0, 0.3), ("x3", 6.0, 0.4)]
                ),
                make_xtuple("y", [("y1", 9.0, 0.5), ("y2", 7.0, 0.5)]),
                make_xtuple("z", [("z1", 8.5, 0.25)]),
            ]
        )
        for k in (1, 2, 3, 4):
            _assert_backends_agree(db, k)


class TestWeightsAndQuality:
    @settings(max_examples=100, deadline=None)
    @given(databases_with_k())
    def test_weights_agree(self, db_k):
        db, _ = db_k
        ranked = db.ranked()
        reference = compute_weights(ranked, backend="python")
        vectorized = compute_weights(ranked, backend="numpy")
        assert vectorized == pytest.approx(reference, abs=ABS)

    @settings(max_examples=100, deadline=None)
    @given(databases_with_k())
    def test_quality_and_g_agree(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        reference = compute_quality_tp(ranked, k, backend="python")
        vectorized = compute_quality_tp(ranked, k, backend="numpy")
        assert vectorized.quality == pytest.approx(reference.quality, abs=ABS)
        assert vectorized.g_by_xtuple() == pytest.approx(
            reference.g_by_xtuple(), abs=ABS
        )
        assert math.fsum(vectorized.g_by_xtuple()) == pytest.approx(
            vectorized.quality, abs=ABS
        )
        assert np.asarray(vectorized.g_by_xtuple_array()) == pytest.approx(
            np.asarray(reference.g_by_xtuple_array()), abs=ABS
        )


class TestBackendSelection:
    def test_default_backend_honours_environment(self):
        import os

        expected = os.environ.get("REPRO_BACKEND", "numpy")
        assert current_backend() == expected

    def test_set_backend_roundtrip(self):
        previous = current_backend()
        set_backend("python")
        try:
            assert current_backend() == "python"
        finally:
            set_backend(previous)

    def test_use_backend_restores_on_exit(self):
        previous = current_backend()
        with use_backend("python"):
            assert current_backend() == "python"
        assert current_backend() == previous

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("fortran")

    def test_kernel_argument_overrides_default(self, udb1):
        with use_backend("python"):
            result = compute_rank_probabilities(udb1.ranked(), 2, backend="numpy")
        assert result.backend == "numpy"
