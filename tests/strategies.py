"""Shared hypothesis strategies for the test suite.

Importable as a plain module (``from strategies import databases``), so
test modules never depend on conftest import semantics -- the previous
``from conftest import ...`` pattern resolved to ``benchmarks/conftest``
when pytest collected both directories.

The central strategy, :func:`databases`, generates small random x-tuple
databases -- optionally complete (every x-tuple's probabilities sum to
one), with controllable size -- used to cross-validate every efficient
algorithm against the exponential possible-world oracles.
"""

from __future__ import annotations

from typing import List, Optional

from hypothesis import strategies as st

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import ProbabilisticTuple, XTuple


def _partition_probabilities(
    draw, num_parts: int, complete: bool
) -> List[float]:
    """Random probabilities for one x-tuple.

    Built from integer weights over a common denominator, so complete
    x-tuples sum to one within strict float tolerance and incomplete
    ones always leave genuine null mass.
    """
    weights = draw(
        st.lists(st.integers(1, 8), min_size=num_parts, max_size=num_parts)
    )
    total = sum(weights)
    if not complete:
        total += draw(st.integers(1, 8))
    return [w / total for w in weights]


@st.composite
def databases(
    draw,
    max_xtuples: int = 4,
    max_alternatives: int = 3,
    complete: Optional[bool] = None,
    min_xtuples: int = 1,
) -> ProbabilisticDatabase:
    """A small random probabilistic database.

    Parameters
    ----------
    complete:
        ``True`` -> every x-tuple sums to one; ``False`` -> every
        x-tuple leaves null mass; ``None`` -> mixed per x-tuple.
    """
    num_xtuples = draw(st.integers(min_xtuples, max_xtuples))
    xtuples = []
    tid_counter = 0
    for l in range(num_xtuples):
        count = draw(st.integers(1, max_alternatives))
        if complete is None:
            is_complete = draw(st.booleans())
        else:
            is_complete = complete
        probabilities = _partition_probabilities(draw, count, is_complete)
        members = []
        for p in probabilities:
            # Integer values with a small range force rank ties, which
            # exercises the deterministic tie-breaking.
            value = draw(st.integers(0, 12))
            members.append(
                ProbabilisticTuple(
                    tid=f"t{tid_counter}",
                    xtuple_id=f"x{l}",
                    value=float(value),
                    probability=p,
                )
            )
            tid_counter += 1
        xtuples.append(XTuple(xid=f"x{l}", alternatives=tuple(members)))
    return ProbabilisticDatabase(xtuples, name="random")


@st.composite
def databases_with_k(draw, **kwargs):
    """A random database paired with a valid k (1..n+1, exercising
    over-sized k as well)."""
    db = draw(databases(**kwargs))
    k = draw(st.integers(1, min(db.num_tuples + 1, 6)))
    return db, k


@st.composite
def cleaning_problems(
    draw,
    max_xtuples: int = 4,
    max_budget: int = 25,
    complete: Optional[bool] = True,
):
    """A random cleaning problem over a random database.

    Returns ``(db, problem)``; the problem's quality inputs come from a
    real TP run on the database, so Theorem 2's preconditions hold.
    """
    from repro.cleaning.model import build_cleaning_problem
    from repro.core.tp import compute_quality_tp

    db = draw(databases(max_xtuples=max_xtuples, complete=complete, min_xtuples=2))
    k = draw(st.integers(1, min(db.num_xtuples, 3)))
    quality = compute_quality_tp(db.ranked(), k)
    costs = {
        xt.xid: draw(st.integers(1, 5)) for xt in db.xtuples
    }
    sc = {
        xt.xid: draw(
            st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
        )
        for xt in db.xtuples
    }
    budget = draw(st.integers(0, max_budget))
    problem = build_cleaning_problem(quality, costs, sc, budget)
    return db, problem
