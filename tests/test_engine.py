"""Shared evaluation engine (Section IV-C) tests."""

import pytest
from hypothesis import given, settings

from repro.queries.engine import evaluate, evaluate_without_sharing

from strategies import databases_with_k


class TestEvaluate:
    def test_paper_example_end_to_end(self, udb1):
        report = evaluate(udb1, 2, threshold=0.4)
        assert report.ptk.tids == ["t1", "t2", "t5"]
        assert report.ukranks.tids == ["t2", "t6"]
        assert report.global_topk.tids == ["t2", "t5"]
        assert report.quality_score == pytest.approx(-2.55, abs=0.005)

    def test_accepts_ranked_view(self, udb1):
        ranked = udb1.ranked()
        report = evaluate(ranked, 2, threshold=0.4)
        assert report.quality.ranked is ranked

    def test_quality_reuses_psr(self, udb1):
        report = evaluate(udb1, 2)
        assert report.quality.rank_probabilities is report.rank_probabilities

    def test_g_by_xtuple_sums_to_quality(self, udb1):
        import math

        report = evaluate(udb1, 2)
        assert math.fsum(report.g_by_xtuple()) == pytest.approx(
            report.quality_score, abs=1e-9
        )

    def test_default_threshold_is_paper_default(self, udb1):
        report = evaluate(udb1, 2)
        assert report.ptk.threshold == 0.1


class TestSharingConsistency:
    @settings(max_examples=50, deadline=None)
    @given(databases_with_k())
    def test_sharing_and_nonsharing_agree(self, db_k):
        db, k = db_k
        shared = evaluate(db, k, threshold=0.25)
        unshared = evaluate_without_sharing(db, k, threshold=0.25)
        assert shared.ptk == unshared.ptk
        assert shared.ukranks == unshared.ukranks
        assert shared.global_topk == unshared.global_topk
        assert shared.quality_score == pytest.approx(
            unshared.quality_score, abs=1e-9
        )

    def test_nonsharing_runs_psr_twice(self, udb1):
        report = evaluate_without_sharing(udb1, 2)
        assert report.quality.rank_probabilities is not report.rank_probabilities
