"""PSR cross-validation against possible-world enumeration.

PSR is the engine under every query semantics and the TP quality
algorithm, so these tests are the load-bearing wall of the suite: exact
agreement with Definition 2/3 on the paper example, on adversarial
constructions (saturating x-tuples, high sibling mass triggering the
from-scratch rebuild), and on random databases via hypothesis.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple
from repro.exceptions import InvalidQueryError
from repro.queries.brute_force import (
    rank_probabilities_by_enumeration,
    topk_probabilities_by_enumeration,
)
from repro.queries.psr import (
    compute_rank_probabilities,
    total_topk_mass,
)

from strategies import databases_with_k

ABS = 1e-9


def _assert_matches_bruteforce(db, k):
    ranked = db.ranked()
    psr = compute_rank_probabilities(ranked, k)
    expected_rho = rank_probabilities_by_enumeration(ranked, k)
    expected_topk = topk_probabilities_by_enumeration(ranked, k)
    for t in ranked.order:
        got = psr.rho(t.tid)
        want = expected_rho[t.tid]
        assert got == pytest.approx(want, abs=ABS), (t.tid, got, want)
        assert psr.topk_probability(t.tid) == pytest.approx(
            expected_topk[t.tid], abs=ABS
        )


class TestPaperExample:
    def test_udb1_top2_probabilities(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        # Hand-derived from the 8 possible worlds of Table I.
        assert psr.topk_probability("t1") == pytest.approx(0.4)
        assert psr.topk_probability("t2") == pytest.approx(0.7)
        assert psr.topk_probability("t5") == pytest.approx(0.432)
        assert psr.topk_probability("t6") == pytest.approx(0.396)
        assert psr.topk_probability("t4") == pytest.approx(0.072)
        assert psr.topk_probability("t0") == 0.0
        assert psr.topk_probability("t3") == 0.0

    def test_udb1_rank_probabilities(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        # t1 exists => always rank 1.
        assert psr.rank_probability("t1", 1) == pytest.approx(0.4)
        assert psr.rank_probability("t1", 2) == pytest.approx(0.0)
        # t2 rank 1 iff t1 absent (0.6 * 0.7).
        assert psr.rank_probability("t2", 1) == pytest.approx(0.42)
        assert psr.rank_probability("t2", 2) == pytest.approx(0.28)

    def test_udb1_vs_bruteforce(self, udb1):
        for k in (1, 2, 3, 4):
            _assert_matches_bruteforce(udb1, k)

    def test_udb2_vs_bruteforce(self, udb2):
        for k in (1, 2, 3):
            _assert_matches_bruteforce(udb2, k)


class TestAdversarialConstructions:
    def test_saturating_xtuple_triggers_shift(self):
        # One certain x-tuple above everything: every later tuple's rank
        # shifts down by one; with k=1 only the top tuple can win.
        db = ProbabilisticDatabase(
            [
                make_xtuple("top", [("a", 100.0, 1.0)]),
                make_xtuple("mid", [("b", 50.0, 0.5), ("c", 40.0, 0.5)]),
            ]
        )
        psr = compute_rank_probabilities(db.ranked(), 1)
        assert psr.topk_probability("a") == 1.0
        assert psr.topk_probability("b") == 0.0
        assert psr.topk_probability("c") == 0.0
        _assert_matches_bruteforce(db, 1)

    def test_lemma2_early_stop_cutoff(self):
        # k certain x-tuples at the top: everything below is provably
        # zero and PSR must stop scanning (cutoff < n).
        xtuples = [
            make_xtuple(f"c{i}", [(f"top{i}", 100.0 - i, 1.0)]) for i in range(3)
        ]
        xtuples.append(
            make_xtuple("tail", [("low1", 5.0, 0.5), ("low2", 4.0, 0.5)])
        )
        db = ProbabilisticDatabase(xtuples)
        psr = compute_rank_probabilities(db.ranked(), 3)
        assert psr.cutoff == 3
        assert psr.topk_probability("low1") == 0.0
        _assert_matches_bruteforce(db, 3)

    def test_high_sibling_mass_uses_rebuild_path(self):
        # Last sibling sees q = 0.9 > 0.5: exercises _rebuild_without.
        db = ProbabilisticDatabase(
            [
                make_xtuple(
                    "big",
                    [
                        ("a", 10.0, 0.45),
                        ("b", 9.0, 0.45),
                        ("c", 8.0, 0.1),
                    ],
                ),
                make_xtuple("other", [("d", 9.5, 0.6), ("e", 7.0, 0.4)]),
            ]
        )
        for k in (1, 2):
            _assert_matches_bruteforce(db, k)

    def test_interleaved_xtuples(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("x", [("x1", 10.0, 0.3), ("x2", 8.0, 0.3), ("x3", 6.0, 0.4)]),
                make_xtuple("y", [("y1", 9.0, 0.5), ("y2", 7.0, 0.5)]),
                make_xtuple("z", [("z1", 8.5, 0.25)]),
            ]
        )
        for k in (1, 2, 3):
            _assert_matches_bruteforce(db, k)

    def test_all_ties_resolved_deterministically(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 5.0, 0.5), ("t1", 5.0, 0.5)]),
                make_xtuple("b", [("t2", 5.0, 1.0)]),
            ]
        )
        for k in (1, 2):
            _assert_matches_bruteforce(db, k)


class TestAccessors:
    def test_rho_vector_shape(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 3)
        assert len(psr.rho("t1")) == 3
        assert len(psr.rho("t0")) == 3

    def test_invalid_rank_rejected(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        with pytest.raises(ValueError):
            psr.rank_probability("t1", 0)
        with pytest.raises(ValueError):
            psr.rank_probability("t1", 3)

    def test_invalid_k_rejected(self, udb1):
        with pytest.raises(InvalidQueryError):
            compute_rank_probabilities(udb1.ranked(), 0)

    def test_topk_probabilities_full_length(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        full = psr.topk_probabilities()
        assert len(full) == udb1.num_tuples

    def test_nonzero_tuples_sorted_by_rank(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        tids = [t.tid for t, _ in psr.nonzero_tuples()]
        positions = [udb1.ranked().rank_of(tid) for tid in tids]
        assert positions == sorted(positions)

    def test_topk_probability_by_xtuple(self, udb1):
        psr = compute_rank_probabilities(udb1.ranked(), 2)
        by_xtuple = psr.topk_probability_by_xtuple()
        assert by_xtuple[0] == pytest.approx(0.4)  # S1: t0 + t1
        assert by_xtuple[2] == pytest.approx(0.432 + 0.072)  # S3: t5 + t4
        assert math.fsum(by_xtuple) == pytest.approx(2.0)


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(databases_with_k())
    def test_matches_bruteforce_on_random_databases(self, db_k):
        db, k = db_k
        _assert_matches_bruteforce(db, k)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(complete=True))
    def test_total_mass_is_k_on_complete_databases(self, db_k):
        db, k = db_k
        if k > db.num_xtuples:
            return  # worlds cannot hold k tuples
        psr = compute_rank_probabilities(db.ranked(), k)
        assert total_topk_mass(psr) == pytest.approx(min(k, db.num_xtuples))

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_topk_probability_bounded_by_existential(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        psr = compute_rank_probabilities(ranked, k)
        for t in ranked.order:
            p = psr.topk_probability(t.tid)
            assert -ABS <= p <= t.probability + ABS

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_rho_sums_to_topk_probability(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        psr = compute_rank_probabilities(ranked, k)
        for t in ranked.order:
            assert math.fsum(psr.rho(t.tid)) == pytest.approx(
                psr.topk_probability(t.tid), abs=ABS
            )

    @settings(max_examples=40, deadline=None)
    @given(databases_with_k(complete=True))
    def test_rank1_winner_is_highest_ranked_existing(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        psr = compute_rank_probabilities(ranked, k)
        # The top-ranked tuple takes rank 1 exactly when it exists.
        top = ranked.order[0]
        assert psr.rank_probability(top.tid, 1) == pytest.approx(
            top.probability, abs=ABS
        )
