"""Grouped knapsack solver: exactness, reconstruction, numpy/python parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.knapsack import (
    KnapsackGroup,
    solve_01_knapsack_bruteforce,
    solve_grouped_knapsack,
    solve_grouped_knapsack_bruteforce,
)


@st.composite
def group_instances(draw):
    """Random grouped instances with non-increasing values per group."""
    num_groups = draw(st.integers(1, 4))
    groups = []
    for _ in range(num_groups):
        cost = draw(st.integers(1, 4))
        length = draw(st.integers(1, 4))
        raw = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0),
                min_size=length,
                max_size=length,
            )
        )
        values = tuple(sorted(raw, reverse=True))
        groups.append(KnapsackGroup(cost=cost, values=values))
    capacity = draw(st.integers(0, 12))
    return groups, capacity


class TestKnapsackGroup:
    def test_prefix_value(self):
        g = KnapsackGroup(cost=2, values=(3.0, 2.0, 1.0))
        assert g.prefix_value(0) == 0.0
        assert g.prefix_value(2) == 5.0
        assert g.prefix_value(3) == 6.0

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValueError):
            KnapsackGroup(cost=0, values=(1.0,))

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            KnapsackGroup(cost=1, values=(-0.5,))


class TestSolveGroupedKnapsack:
    def test_trivial_single_group(self):
        groups = [KnapsackGroup(cost=2, values=(5.0, 3.0, 1.0))]
        solution = solve_grouped_knapsack(groups, 4)
        assert solution.value == pytest.approx(8.0)
        assert solution.counts == [2]
        assert solution.cost == 4

    def test_zero_capacity(self):
        groups = [KnapsackGroup(cost=1, values=(5.0,))]
        solution = solve_grouped_knapsack(groups, 0)
        assert solution.value == 0.0
        assert solution.counts == [0]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_grouped_knapsack([], -1)

    def test_prefers_high_value_per_cost_mixture(self):
        groups = [
            KnapsackGroup(cost=3, values=(9.0,)),  # 3 per unit
            KnapsackGroup(cost=2, values=(8.0,)),  # 4 per unit
        ]
        solution = solve_grouped_knapsack(groups, 4)
        # Only one fits entirely: the exact optimum is 9 (cost 3), not
        # greedy's 8.
        assert solution.value == pytest.approx(9.0)
        assert solution.counts == [1, 0]

    def test_value_curve_is_monotone(self):
        groups = [
            KnapsackGroup(cost=2, values=(4.0, 2.0)),
            KnapsackGroup(cost=3, values=(5.0,)),
        ]
        curve = solve_grouped_knapsack(groups, 10).best_value_by_capacity
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    @settings(max_examples=80, deadline=None)
    @given(group_instances())
    def test_matches_bruteforce(self, instance):
        groups, capacity = instance
        solution = solve_grouped_knapsack(groups, capacity)
        best_value, _ = solve_grouped_knapsack_bruteforce(groups, capacity)
        assert solution.value == pytest.approx(best_value, abs=1e-9)

    @settings(max_examples=80, deadline=None)
    @given(group_instances())
    def test_numpy_and_python_agree(self, instance):
        groups, capacity = instance
        a = solve_grouped_knapsack(groups, capacity, use_numpy=True)
        b = solve_grouped_knapsack(groups, capacity, use_numpy=False)
        assert a.value == pytest.approx(b.value, abs=1e-9)
        assert a.counts == b.counts

    @settings(max_examples=80, deadline=None)
    @given(group_instances())
    def test_reconstruction_is_feasible_and_consistent(self, instance):
        groups, capacity = instance
        solution = solve_grouped_knapsack(groups, capacity)
        cost = sum(g.cost * c for g, c in zip(groups, solution.counts))
        value = sum(g.prefix_value(c) for g, c in zip(groups, solution.counts))
        assert cost <= capacity
        assert cost == solution.cost
        assert value == pytest.approx(solution.value, abs=1e-9)
        for g, c in zip(groups, solution.counts):
            assert 0 <= c <= len(g.values)


class TestBruteforce01:
    def test_small_instance(self):
        values = [6.0, 10.0, 12.0]
        costs = [1, 2, 3]
        best, subset = solve_01_knapsack_bruteforce(values, costs, 5)
        assert best == pytest.approx(22.0)
        assert sorted(subset) == [1, 2]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_01_knapsack_bruteforce([1.0], [1, 2], 3)

    def test_grouped_problem_equals_flat_expansion(self):
        # A grouped instance expanded to flat 0/1 items must have the
        # same optimum (prefix property follows from sorted values).
        groups = [
            KnapsackGroup(cost=2, values=(4.0, 3.0, 0.5)),
            KnapsackGroup(cost=1, values=(2.0, 1.0)),
        ]
        capacity = 6
        flat_values, flat_costs = [], []
        for g in groups:
            for v in g.values:
                flat_values.append(v)
                flat_costs.append(g.cost)
        flat_best, _ = solve_01_knapsack_bruteforce(
            flat_values, flat_costs, capacity
        )
        grouped = solve_grouped_knapsack(groups, capacity)
        assert grouped.value == pytest.approx(flat_best)
