"""Extensions: inverse cleaning (min cost) and adaptive re-planning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.improvement import (
    expected_improvement,
    improvement_upper_bound,
)
from repro.cleaning.inverse import min_cost_plan, min_cost_plan_greedy
from repro.cleaning.model import build_cleaning_problem
from repro.core.tp import compute_quality_tp
from repro.exceptions import InfeasibleTargetError

from strategies import cleaning_problems


def _paper_problem(udb1, budget=100):
    quality = compute_quality_tp(udb1.ranked(), 2)
    return build_cleaning_problem(
        quality,
        {"S1": 2, "S2": 3, "S3": 1, "S4": 5},
        {"S1": 0.8, "S2": 0.5, "S3": 0.9, "S4": 1.0},
        budget,
    )


class TestInverseCleaning:
    def test_zero_target_costs_nothing(self, udb1):
        problem = _paper_problem(udb1)
        for method in ("dp", "greedy"):
            solution = min_cost_plan(problem, 0.0, method=method)
            assert solution.cost == 0
            assert len(solution.plan) == 0

    def test_infeasible_target_raises(self, udb1):
        problem = _paper_problem(udb1)
        too_much = improvement_upper_bound(problem) + 0.1
        for method in ("dp", "greedy"):
            with pytest.raises(InfeasibleTargetError):
                min_cost_plan(problem, too_much, method=method)

    def test_solution_reaches_target(self, udb1):
        problem = _paper_problem(udb1)
        target = 0.5 * improvement_upper_bound(problem)
        for method in ("dp", "greedy"):
            solution = min_cost_plan(problem, target, method=method)
            assert solution.expected_improvement >= target - 1e-9
            assert expected_improvement(problem, solution.plan) == pytest.approx(
                solution.expected_improvement, abs=1e-9
            )
            assert solution.plan.total_cost(problem) == solution.cost

    def test_dp_cost_is_minimal_vs_budget_sweep(self, udb1):
        problem = _paper_problem(udb1)
        target = 0.6 * improvement_upper_bound(problem)
        solution = min_cost_plan(problem, target, method="dp")
        # No smaller budget admits a plan reaching the target.
        for budget in range(solution.cost):
            smaller = problem.with_budget(budget)
            best = expected_improvement(smaller, DPCleaner().plan(smaller))
            assert best < target

    def test_greedy_at_least_dp_cost(self, udb1):
        problem = _paper_problem(udb1)
        target = 0.4 * improvement_upper_bound(problem)
        dp_solution = min_cost_plan(problem, target, method="dp")
        greedy_solution = min_cost_plan_greedy(problem, target)
        assert greedy_solution.cost >= dp_solution.cost

    def test_unknown_method_rejected(self, udb1):
        with pytest.raises(ValueError):
            min_cost_plan(_paper_problem(udb1), 0.1, method="magic")

    @settings(max_examples=20, deadline=None)
    @given(cleaning_problems(max_xtuples=3), st.sampled_from([0.25, 0.5, 0.9]))
    def test_random_targets_reached_or_declared_infeasible(
        self, db_problem, fraction
    ):
        _, problem = db_problem
        bound = improvement_upper_bound(problem)
        if bound <= 0.0:
            return
        target = fraction * bound
        solution = min_cost_plan(problem, target, method="dp")
        assert solution.expected_improvement >= target - 1e-9


class TestAdaptiveCleaning:
    def test_runs_and_accounts_budget(self, udb1):
        problem = _paper_problem(udb1, budget=12)
        result = clean_adaptively(
            udb1, problem, GreedyCleaner(), rng=random.Random(5)
        )
        assert 0 <= result.budget_spent <= problem.budget
        assert result.initial_quality == pytest.approx(problem.quality)
        assert result.final_quality >= result.initial_quality - 1e-9
        assert result.rounds  # at least one probe round happened

    def test_stops_when_everything_certain(self, udb2):
        # udb2 still has S1/S2 uncertain; with P=1 everywhere and ample
        # budget, the loop must terminate with quality zero.
        quality = compute_quality_tp(udb2.ranked(), 2)
        problem = build_cleaning_problem(
            quality,
            {"S1": 1, "S2": 1, "S3": 1, "S4": 1},
            {"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0},
            budget=50,
        )
        result = clean_adaptively(
            udb2, problem, GreedyCleaner(), rng=random.Random(0)
        )
        assert result.final_quality == pytest.approx(0.0, abs=1e-9)
        assert result.budget_spent < 50  # stopped early, not exhausted

    def test_zero_budget_no_rounds(self, udb1):
        problem = _paper_problem(udb1, budget=0)
        result = clean_adaptively(udb1, problem, GreedyCleaner())
        assert result.rounds == ()
        assert result.budget_spent == 0
        assert result.final_quality == pytest.approx(result.initial_quality)

    def test_adaptive_beats_or_matches_oneshot_on_average(self, udb1):
        """Re-investing saved budget can only help in expectation."""
        problem = _paper_problem(udb1, budget=6)
        planner = GreedyCleaner()
        rng = random.Random(99)
        adaptive_gain = 0.0
        oneshot_gain = 0.0
        rounds = 300
        for _ in range(rounds):
            adaptive = clean_adaptively(udb1, problem, planner, rng=rng)
            adaptive_gain += adaptive.realized_improvement
            from repro.cleaning.executor import execute_plan

            outcome = execute_plan(udb1, problem, planner.plan(problem), rng=rng)
            after = compute_quality_tp(outcome.cleaned_db.ranked(), 2).quality
            oneshot_gain += after - problem.quality
        # Allow sampling noise but require no systematic regression.
        assert adaptive_gain / rounds >= oneshot_gain / rounds - 0.05

    def test_max_rounds_respected(self, udb1):
        problem = _paper_problem(udb1, budget=30)
        result = clean_adaptively(
            udb1, problem, GreedyCleaner(), rng=random.Random(1), max_rounds=2
        )
        assert len(result.rounds) <= 2
