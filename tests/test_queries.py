"""Query semantics (U-kRanks, PT-k, Global-topk) vs brute force."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidQueryError
from repro.queries import global_topk, ptk, ukranks
from repro.queries.brute_force import (
    rank_probabilities_by_enumeration,
    topk_probabilities_by_enumeration,
)
from repro.queries.psr import compute_rank_probabilities

from strategies import databases_with_k


class TestPTk:
    def test_paper_example(self, udb1):
        # k=2, T=0.4 -> {t1, t2, t5} (paper Section I).
        answer = ptk.evaluate(udb1.ranked(), 2, 0.4)
        assert answer.tids == ["t1", "t2", "t5"]
        assert "t6" not in answer  # p = 0.396 < 0.4, the paper's near-miss
        assert len(answer) == 3

    def test_members_carry_probabilities(self, udb1):
        answer = ptk.evaluate(udb1.ranked(), 2, 0.4)
        probabilities = dict(answer.members)
        assert probabilities["t2"] == pytest.approx(0.7)
        assert probabilities["t5"] == pytest.approx(0.432)

    def test_threshold_zero_returns_all_nonzero(self, udb1):
        answer = ptk.evaluate(udb1.ranked(), 2, 0.0)
        assert set(answer.tids) == {"t1", "t2", "t5", "t6", "t4"}

    def test_threshold_one_returns_certain_members(self, udb2):
        answer = ptk.evaluate(udb2.ranked(), 1, 1.0)
        assert answer.tids == []

    @pytest.mark.parametrize("bad", [-0.1, 1.1, "0.5", None])
    def test_invalid_threshold_rejected(self, udb1, bad):
        with pytest.raises(InvalidQueryError):
            ptk.evaluate(udb1.ranked(), 2, bad)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k(), st.sampled_from([0.1, 0.3, 0.5, 0.9]))
    def test_matches_bruteforce(self, db_k, threshold):
        db, k = db_k
        ranked = db.ranked()
        expected = {
            tid
            for tid, p in topk_probabilities_by_enumeration(ranked, k).items()
            if p >= threshold - 1e-9
        }
        got = set(ptk.evaluate(ranked, k, threshold).tids)
        # Tuples within float noise of the threshold may differ; allow
        # them on either side.
        exact = topk_probabilities_by_enumeration(ranked, k)
        for tid in got ^ expected:
            assert exact[tid] == pytest.approx(threshold, abs=1e-9)


class TestUkRanks:
    def test_paper_example(self, udb1):
        answer = ukranks.evaluate(udb1.ranked(), 2)
        assert answer.winner_at(1).tid == "t2"  # p = 0.42
        assert answer.winner_at(1).probability == pytest.approx(0.42)
        assert answer.winner_at(2).tid == "t6"  # p = 0.324
        assert answer.winner_at(2).probability == pytest.approx(0.324)

    def test_missing_rank_raises(self, udb1):
        answer = ukranks.evaluate(udb1.ranked(), 2)
        with pytest.raises(KeyError):
            answer.winner_at(3)

    def test_tids_by_rank(self, udb1):
        answer = ukranks.evaluate(udb1.ranked(), 2)
        assert answer.tids == ["t2", "t6"]

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_winner_has_maximal_rank_probability(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        rho = rank_probabilities_by_enumeration(ranked, k)
        answer = ukranks.evaluate(ranked, k)
        for winner in answer.winners:
            best = max(vec[winner.rank - 1] for vec in rho.values())
            assert winner.probability == pytest.approx(best, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(databases_with_k(complete=True))
    def test_every_feasible_rank_has_a_winner(self, db_k):
        db, k = db_k
        feasible = min(k, db.num_xtuples)
        answer = ukranks.evaluate(db.ranked(), k)
        assert len(answer.winners) == feasible


class TestGlobalTopk:
    def test_paper_example(self, udb1):
        answer = global_topk.evaluate(udb1.ranked(), 2)
        # Highest top-2 probabilities: t2 (0.7), t5 (0.432).
        assert answer.tids == ["t2", "t5"]

    def test_tie_break_by_rank(self):
        from repro.db.database import ProbabilisticDatabase
        from repro.db.tuples import make_xtuple

        # Two x-tuples with symmetric probabilities: equal top-1
        # probabilities, the higher-ranked tuple must win.
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("hi", 10.0, 0.5), ("hi2", 9.0, 0.5)]),
                make_xtuple("b", [("lo", 5.0, 0.5), ("lo2", 4.0, 0.5)]),
            ]
        )
        answer = global_topk.evaluate(db.ranked(), 1)
        assert answer.tids == ["hi"]

    def test_answer_size_bounded_by_k(self, udb1):
        for k in (1, 2, 3):
            assert len(global_topk.evaluate(udb1.ranked(), k)) <= k

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_selects_k_highest_topk_probabilities(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        exact = topk_probabilities_by_enumeration(ranked, k)
        answer = global_topk.evaluate(ranked, k)
        chosen = [exact[tid] for tid in answer.tids]
        excluded = [
            exact[tid] for tid in exact if tid not in set(answer.tids)
        ]
        if chosen and excluded:
            assert min(chosen) >= max(excluded) - 1e-9
        # Probabilities reported must match the exact values.
        for tid, p in answer.members:
            assert p == pytest.approx(exact[tid], abs=1e-9)


class TestSharedAggregation:
    @settings(max_examples=40, deadline=None)
    @given(databases_with_k())
    def test_all_semantics_from_one_psr_pass(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        rank_probs = compute_rank_probabilities(ranked, k)
        assert ukranks.answer_from_rank_probabilities(
            rank_probs
        ) == ukranks.evaluate(ranked, k)
        assert ptk.answer_from_rank_probabilities(
            rank_probs, 0.3
        ) == ptk.evaluate(ranked, k, 0.3)
        assert global_topk.answer_from_rank_probabilities(
            rank_probs
        ) == global_topk.evaluate(ranked, k)
