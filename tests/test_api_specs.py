"""Request specs and result envelopes: validation and JSON round-trips."""

import json

import pytest

from repro.api.results import ServiceResult
from repro.api.specs import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
    spec_from_dict,
)
from repro.exceptions import InvalidSpecError

ALL_SPECS = [
    QuerySpec(k=5),
    QuerySpec(k=1, semantics="ptk", threshold=0.25),
    QuerySpec(k=100, semantics="global-topk", threshold=0.0),
    QualitySpec(k=7),
    QualitySpec(k=2, method="pwr"),
    QualitySpec(k=3, method="montecarlo", samples=500),
    CleaningSpec(k=5, budget=10),
    CleaningSpec(
        k=2,
        budget=3,
        planner="dp",
        costs={"S1": 1, "S2": 4},
        sc_probabilities={"S1": 0.5, "S2": 1.0},
        cost_seed=7,
        sc_seed=9,
        execute=False,
        adaptive=True,
        seed=11,
    ),
    BatchSpec(items=(QuerySpec(k=5), QualitySpec(k=9))),
    BatchSpec(
        items=(
            QuerySpec(k=2, semantics="ukranks"),
            QuerySpec(k=20, threshold=0.4),
            QualitySpec(k=4, method="pw"),
        )
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).TYPE)
    def test_from_dict_of_to_dict_is_identity(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).TYPE)
    def test_survives_json_wire_format(self, spec):
        wire = json.loads(json.dumps(spec.to_dict()))
        assert spec_from_dict(wire) == spec

    def test_dispatch_by_type_tag(self):
        assert isinstance(spec_from_dict({"type": "query", "k": 3}), QuerySpec)
        assert isinstance(
            spec_from_dict({"type": "cleaning", "k": 3, "budget": 1}),
            CleaningSpec,
        )

    def test_defaults_materialize_on_decode(self):
        spec = spec_from_dict({"type": "query", "k": 3})
        assert spec == QuerySpec(k=3, semantics="all", threshold=0.1)


class TestSpecValidation:
    @pytest.mark.parametrize("k", [0, -1, 1.5, True, "3"])
    def test_bad_k_rejected(self, k):
        with pytest.raises(InvalidSpecError):
            QuerySpec(k=k)

    def test_bad_semantics_rejected(self):
        with pytest.raises(InvalidSpecError, match="semantics"):
            QuerySpec(k=3, semantics="topk")

    @pytest.mark.parametrize("threshold", [-0.1, 1.1, float("nan")])
    def test_bad_threshold_rejected(self, threshold):
        with pytest.raises(InvalidSpecError, match="threshold"):
            QuerySpec(k=3, threshold=threshold)

    def test_bad_quality_method_rejected(self):
        with pytest.raises(InvalidSpecError, match="method"):
            QualitySpec(k=3, method="magic")

    @pytest.mark.parametrize("budget", [-1, 2.5, True])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(InvalidSpecError, match="budget"):
            CleaningSpec(k=3, budget=budget)

    def test_bad_planner_rejected(self):
        with pytest.raises(InvalidSpecError, match="planner"):
            CleaningSpec(k=3, budget=1, planner="magic")

    def test_bad_cost_value_named_in_error(self):
        with pytest.raises(InvalidSpecError, match="S2"):
            CleaningSpec(k=3, budget=1, costs={"S1": 1, "S2": 0})

    def test_bad_sc_value_named_in_error(self):
        with pytest.raises(InvalidSpecError, match="S9"):
            CleaningSpec(k=3, budget=1, sc_probabilities={"S9": 1.5})

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidSpecError, match="at least one"):
            BatchSpec(items=())

    def test_cleaning_cannot_ride_in_a_batch(self):
        with pytest.raises(InvalidSpecError, match="batch items"):
            BatchSpec(items=(CleaningSpec(k=3, budget=1),))

    def test_unknown_fields_rejected_on_decode(self):
        with pytest.raises(InvalidSpecError, match="unknown spec fields"):
            QuerySpec.from_dict({"type": "query", "k": 3, "kk": 4})

    def test_missing_type_tag_rejected(self):
        with pytest.raises(InvalidSpecError, match="type"):
            spec_from_dict({"k": 3})

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(InvalidSpecError, match="unknown spec type"):
            spec_from_dict({"type": "mystery", "k": 3})

    def test_mismatched_type_tag_rejected(self):
        with pytest.raises(InvalidSpecError, match="declares type"):
            QualitySpec.from_dict({"type": "query", "k": 3})

    def test_batch_max_k(self):
        spec = BatchSpec(items=(QuerySpec(k=5), QualitySpec(k=9), QuerySpec(k=2)))
        assert spec.max_k == 9

    def test_batch_max_k_ignores_non_tp_quality(self):
        spec = BatchSpec(
            items=(QuerySpec(k=5), QualitySpec(k=500, method="montecarlo"))
        )
        # The sampling item never reads the PSR cache, so it does not
        # size the shared pass.
        assert spec.max_k == 5
        only_sampling = BatchSpec(
            items=(QualitySpec(k=500, method="montecarlo"),)
        )
        assert only_sampling.max_k is None

    def test_batch_missing_items_rejected_on_decode(self):
        with pytest.raises(InvalidSpecError, match="items"):
            spec_from_dict({"type": "batch"})


class TestServiceResult:
    def _result(self):
        return ServiceResult(
            kind="query",
            snapshot_id="snap-abc",
            payload={"k": 3, "quality": -1.25, "tids": ["t1", "t2"]},
            spec=QuerySpec(k=3).to_dict(),
            timing_ms=1.75,
            counters={"psr_misses": 1, "psr_hits": 2},
        )

    def test_round_trip_identity(self):
        result = self._result()
        assert ServiceResult.from_dict(result.to_dict()) == result

    def test_round_trip_through_json(self):
        result = self._result()
        wire = json.loads(json.dumps(result.to_dict()))
        assert ServiceResult.from_dict(wire) == result

    def test_bad_kind_rejected(self):
        with pytest.raises(InvalidSpecError, match="kind"):
            ServiceResult(kind="mystery", snapshot_id="snap-abc")

    def test_missing_required_key_rejected(self):
        with pytest.raises(InvalidSpecError, match="snapshot_id"):
            ServiceResult.from_dict({"kind": "query"})
