"""Unit tests for ProbabilisticDatabase and RankedDatabase."""

import pytest
from hypothesis import given

from repro.db.database import ProbabilisticDatabase
from repro.db.ranking import by_value, custom
from repro.db.tuples import make_xtuple
from repro.exceptions import InvalidDatabaseError

from strategies import databases


class TestProbabilisticDatabase:
    def test_basic_counts(self, udb1):
        assert udb1.num_xtuples == 4
        assert udb1.num_tuples == 7
        assert len(udb1) == 7

    def test_iteration_order_is_insertion_order(self, udb1):
        assert [t.tid for t in udb1] == [f"t{i}" for i in range(7)]

    def test_lookup(self, udb1):
        assert udb1.tuple("t4").value == 25.0
        assert udb1.xtuple("S3").xid == "S3"
        assert "t4" in udb1
        assert "missing" not in udb1
        assert udb1.has_xtuple("S3")
        assert not udb1.has_xtuple("S9")

    def test_unknown_lookups_raise(self, udb1):
        with pytest.raises(InvalidDatabaseError):
            udb1.tuple("nope")
        with pytest.raises(InvalidDatabaseError):
            udb1.xtuple("nope")

    def test_duplicate_xtuple_id_rejected(self):
        xt = make_xtuple("S1", [("t0", 1.0, 0.5)])
        xt2 = make_xtuple("S1", [("t1", 2.0, 0.5)])
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticDatabase([xt, xt2])

    def test_duplicate_tid_across_xtuples_rejected(self):
        xt = make_xtuple("S1", [("t0", 1.0, 0.5)])
        xt2 = make_xtuple("S2", [("t0", 2.0, 0.5)])
        with pytest.raises(InvalidDatabaseError):
            ProbabilisticDatabase([xt, xt2])

    def test_is_complete(self, udb1):
        assert udb1.is_complete
        incomplete = ProbabilisticDatabase(
            [make_xtuple("S1", [("t0", 1.0, 0.5)])]
        )
        assert not incomplete.is_complete

    def test_num_possible_worlds_complete(self, udb1):
        # 2 * 2 * 2 * 1 choices, no null outcomes.
        assert udb1.num_possible_worlds() == 8

    def test_num_possible_worlds_with_nulls(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 1.0, 0.5)]),  # +null -> 2
                make_xtuple("b", [("t1", 1.0, 0.6), ("t2", 2.0, 0.4)]),  # 2
            ]
        )
        assert db.num_possible_worlds() == 4

    def test_with_xtuple_replaced_builds_udb2(self, udb1, udb2):
        s3 = udb1.xtuple("S3")
        cleaned = udb1.with_xtuple_replaced("S3", s3.collapsed_to("t5"))
        assert cleaned.num_tuples == udb2.num_tuples
        assert cleaned.xtuple("S3").is_certain
        assert cleaned.xtuple("S3").alternatives[0].tid == "t5"
        # Other x-tuples untouched; original unmodified.
        assert cleaned.xtuple("S1") is udb1.xtuple("S1")
        assert udb1.xtuple("S3") is s3

    def test_with_xtuple_replaced_validates(self, udb1):
        s3 = udb1.xtuple("S3")
        with pytest.raises(InvalidDatabaseError):
            udb1.with_xtuple_replaced("S9", s3)
        with pytest.raises(InvalidDatabaseError):
            udb1.with_xtuple_replaced("S1", s3)  # id mismatch

    def test_insertion_index(self, udb1):
        assert udb1.insertion_index("t0") == 0
        assert udb1.insertion_index("t6") == 6


class TestRankedDatabase:
    def test_paper_rank_order(self, udb1):
        ranked = udb1.ranked()
        # Descending temperature: t1(32) t2(30) t5(27) t6(26) t4(25) t3(22) t0(21)
        assert [t.tid for t in ranked.order] == [
            "t1", "t2", "t5", "t6", "t4", "t3", "t0",
        ]
        assert ranked.rank_of("t1") == 0
        assert ranked.rank_of("t0") == 6

    def test_scores_are_descending(self, udb1):
        ranked = udb1.ranked()
        assert ranked.scores == sorted(ranked.scores, reverse=True)

    def test_tie_break_by_insertion_index(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 5.0, 0.5)]),
                make_xtuple("b", [("t1", 5.0, 0.5)]),
                make_xtuple("c", [("t2", 5.0, 0.5)]),
            ]
        )
        ranked = db.ranked()
        # Equal values: smaller insertion index ranks higher (paper Sec. VI).
        assert [t.tid for t in ranked.order] == ["t0", "t1", "t2"]

    def test_parallel_arrays_consistent(self, udb1):
        ranked = udb1.ranked()
        for i, t in enumerate(ranked.order):
            assert ranked.probabilities[i] == t.probability
            xid = ranked.xtuple_ids[ranked.xtuple_indices[i]]
            assert xid == t.xtuple_id

    def test_custom_ranking(self, udb1):
        # Rank ascending by value instead.
        ranking = custom(lambda t: -float(t.value), name="ascending")
        ranked = udb1.ranked(ranking)
        assert [t.tid for t in ranked.order][:2] == ["t0", "t3"]

    def test_top(self, udb1):
        ranked = udb1.ranked()
        assert [t.tid for t in ranked.top(2)] == ["t1", "t2"]

    def test_min_real_tuples_probability_complete(self, udb1):
        ranked = udb1.ranked()
        for k in range(1, 5):
            assert ranked.min_real_tuples_probability(k) == pytest.approx(1.0)
        assert ranked.min_real_tuples_probability(5) == 0.0

    def test_min_real_tuples_probability_incomplete(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 1.0, 0.5)]),
                make_xtuple("b", [("t1", 2.0, 0.5)]),
            ]
        )
        ranked = db.ranked()
        # P[>=1 real] = 1 - 0.25, P[>=2] = 0.25.
        assert ranked.min_real_tuples_probability(1) == pytest.approx(0.75)
        assert ranked.min_real_tuples_probability(2) == pytest.approx(0.25)
        assert ranked.min_real_tuples_probability(0) == 1.0


class TestRankedDatabaseProperties:
    @given(databases())
    def test_ranked_view_is_a_permutation(self, db):
        ranked = db.ranked()
        assert sorted(t.tid for t in ranked.order) == sorted(
            t.tid for t in db
        )

    @given(databases())
    def test_rank_positions_invert_order(self, db):
        ranked = db.ranked()
        for i, t in enumerate(ranked.order):
            assert ranked.rank_of(t.tid) == i

    @given(databases())
    def test_ranking_respects_scores_with_stable_ties(self, db):
        ranked = db.ranked()
        for earlier, later in zip(ranked.order, ranked.order[1:]):
            ev, lv = float(earlier.value), float(later.value)
            assert ev >= lv
            if ev == lv:
                assert db.insertion_index(earlier.tid) < db.insertion_index(
                    later.tid
                )
