"""PW and PWR quality algorithms: paper vectors, Lemma 1, equivalence.

PWR must reproduce PW's pw-result distribution *exactly* (same results,
same probabilities) on every database, complete or not -- this is the
strongest internal-consistency check in the quality layer.
"""

import math

import pytest
from hypothesis import given, settings

from repro.core.pw import compute_quality_pw
from repro.core.pwr import (
    ResultLimitExceeded,
    compute_quality_pwr,
    iter_pw_results,
)
from repro.datasets.paper import UDB1_TOP2_QUALITY, UDB2_TOP2_QUALITY
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple
from repro.queries.brute_force import pw_result_distribution

from strategies import databases_with_k

ABS = 1e-9


class TestPaperVectors:
    def test_udb1_quality_and_result_count(self, udb1):
        result = compute_quality_pw(udb1.ranked(), 2)
        assert result.quality == pytest.approx(UDB1_TOP2_QUALITY)
        assert result.quality == pytest.approx(-2.55, abs=0.005)
        assert result.num_results == 7  # Figure 2

    def test_udb2_quality_and_result_count(self, udb2):
        result = compute_quality_pw(udb2.ranked(), 2)
        assert result.quality == pytest.approx(UDB2_TOP2_QUALITY)
        assert result.quality == pytest.approx(-1.85, abs=0.005)
        assert result.num_results == 4  # Figure 3

    def test_cleaning_improves_quality(self, udb1, udb2):
        # The paper's motivating observation: udb2 is less ambiguous.
        q1 = compute_quality_pw(udb1.ranked(), 2).quality
        q2 = compute_quality_pw(udb2.ranked(), 2).quality
        assert q2 > q1

    def test_lemma1_example_result_probability(self, udb1):
        # Pr((t1, t2)) = 0.112 + 0.168 = 0.28 (paper Section III-B).
        distribution = compute_quality_pwr(
            udb1.ranked(), 2, collect=True
        ).distribution
        assert distribution[("t1", "t2")] == pytest.approx(0.28)

    def test_figure2_distribution(self, udb1):
        distribution = compute_quality_pwr(
            udb1.ranked(), 2, collect=True
        ).distribution
        expected = {
            ("t2", "t6"): 0.168,
            ("t2", "t5"): 0.252,
            ("t6", "t4"): 0.072,
            ("t5", "t6"): 0.108,
            ("t1", "t2"): 0.28,
            ("t1", "t6"): 0.048,
            ("t1", "t5"): 0.072,
        }
        assert set(distribution) == set(expected)
        for key, probability in expected.items():
            assert distribution[key] == pytest.approx(probability)

    def test_figure3_distribution(self, udb2):
        distribution = compute_quality_pwr(
            udb2.ranked(), 2, collect=True
        ).distribution
        expected = {
            ("t2", "t5"): 0.42,
            ("t5", "t6"): 0.18,
            ("t1", "t2"): 0.28,
            ("t1", "t5"): 0.12,
        }
        assert set(distribution) == set(expected)
        for key, probability in expected.items():
            assert distribution[key] == pytest.approx(probability)


class TestPWRMechanics:
    def test_max_results_cap(self, udb1):
        with pytest.raises(ResultLimitExceeded):
            compute_quality_pwr(udb1.ranked(), 2, max_results=3)

    def test_no_distribution_unless_collected(self, udb1):
        result = compute_quality_pwr(udb1.ranked(), 2)
        assert result.distribution is None
        assert result.num_results == 7

    def test_pw_max_worlds_cap(self, udb1):
        with pytest.raises(ValueError):
            compute_quality_pw(udb1.ranked(), 2, max_worlds=4)

    def test_short_results_on_incomplete_database(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 2.0, 0.5)]),
                make_xtuple("b", [("t1", 1.0, 0.5)]),
            ]
        )
        distribution = compute_quality_pwr(
            db.ranked(), 2, collect=True
        ).distribution
        # Worlds: both (0.25) -> (t0,t1); only t0 -> (t0,); only t1 ->
        # (t1,); neither -> ().
        assert distribution[("t0", "t1")] == pytest.approx(0.25)
        assert distribution[("t0",)] == pytest.approx(0.25)
        assert distribution[("t1",)] == pytest.approx(0.25)
        assert distribution[()] == pytest.approx(0.25)

    def test_forced_existence_prunes_zero_branches(self):
        # Complete x-tuple: its last member is forced to exist when no
        # sibling does; PWR must not emit zero-probability results.
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("hi", 10.0, 0.5), ("lo", 1.0, 0.5)]),
                make_xtuple("b", [("mid", 5.0, 1.0)]),
            ]
        )
        results = dict(iter_pw_results(db.ranked(), 2))
        assert all(p > 0.0 for p in results.values())
        assert set(results) == {("hi", "mid"), ("mid", "lo")}

    def test_results_unique(self, udb1):
        seen = list(iter_pw_results(udb1.ranked(), 2))
        keys = [r for r, _ in seen]
        assert len(keys) == len(set(keys))


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(databases_with_k())
    def test_pwr_matches_bruteforce_distribution(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        expected = pw_result_distribution(ranked, k)
        got = compute_quality_pwr(ranked, k, collect=True).distribution
        assert set(got) == set(expected)
        for key, probability in expected.items():
            assert got[key] == pytest.approx(probability, abs=ABS)

    @settings(max_examples=80, deadline=None)
    @given(databases_with_k())
    def test_pwr_quality_matches_pw(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        assert compute_quality_pwr(ranked, k).quality == pytest.approx(
            compute_quality_pw(ranked, k).quality, abs=ABS
        )

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_probabilities_sum_to_one(self, db_k):
        db, k = db_k
        total = math.fsum(
            p for _, p in iter_pw_results(db.ranked(), k)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_quality_bounds(self, db_k):
        db, k = db_k
        result = compute_quality_pwr(db.ranked(), k)
        assert result.quality <= 1e-12
        assert result.quality >= -math.log2(max(result.num_results, 1)) - 1e-9
