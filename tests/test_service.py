"""TopKService: façade behavior, batch sharing, cleaning snapshots."""

import warnings

import pytest

from repro.api import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
    SessionPool,
    TopKService,
    snapshot_id_of,
)
from repro.datasets.synthetic import generate_costs, generate_sc_probabilities
from repro.exceptions import UnknownSnapshotError, UnknownXTupleError
from repro.queries.engine import QuerySession

from conftest import assert_payloads_close


@pytest.fixture
def service():
    return TopKService()


@pytest.fixture
def udb1_id(service, udb1):
    return service.register(udb1).snapshot_id


class TestRegister:
    def test_register_reports_shape(self, service, udb1):
        result = service.register(udb1)
        assert result.kind == "register"
        assert result.payload == {
            "num_xtuples": 4,
            "num_tuples": 7,
            "name": "udb1",
        }
        assert result.snapshot_id == snapshot_id_of(udb1)

    def test_idempotent_by_content(self, service, udb1):
        from repro.datasets.paper import udb1 as factory

        first = service.register(udb1).snapshot_id
        second = service.register(factory()).snapshot_id
        assert first == second
        assert service.pool.num_snapshots == 1

    def test_content_hash_ignores_name(self, udb1):
        from repro.db.database import ProbabilisticDatabase

        renamed = ProbabilisticDatabase(udb1.xtuples, name="other")
        assert snapshot_id_of(renamed) == snapshot_id_of(udb1)

    def test_unknown_snapshot_rejected(self, service):
        with pytest.raises(UnknownSnapshotError):
            service.query("snap-missing", QuerySpec(k=2))

    def test_conflicting_ranking_rejected(self, service, udb1):
        from repro.db.ranking import custom

        service.register(udb1)  # by-value default
        reverse = udb1.ranked(custom(lambda t: -t.value, name="reverse"))
        with pytest.raises(ValueError, match="already registered"):
            service.register(reverse)

    def test_equivalent_ranking_accepted(self, service, udb1):
        from repro.db.ranking import by_value

        first = service.register(udb1.ranked(by_value())).snapshot_id
        # A fresh by_value() instance is demonstrably the same ordering.
        second = service.register(udb1.ranked(by_value())).snapshot_id
        assert first == second


class TestQueryAndQuality:
    def test_query_matches_engine(self, service, udb1, udb1_id):
        result = service.query(udb1_id, QuerySpec(k=2, threshold=0.4))
        report = QuerySession(udb1).evaluate(2, threshold=0.4)
        payload = result.payload
        assert [t for t, _ in payload["ptk"]["members"]] == report.ptk.tids
        assert [
            t for t, _ in payload["global_topk"]["members"]
        ] == report.global_topk.tids
        assert [
            w["tid"] for w in payload["ukranks"]["winners"]
        ] == report.ukranks.tids
        assert payload["quality"] == pytest.approx(report.quality_score)

    def test_single_semantics_payload(self, service, udb1_id):
        result = service.query(udb1_id, QuerySpec(k=2, semantics="ptk"))
        assert set(result.payload) == {"k", "ptk"}

    def test_quality_tp(self, service, udb1_id):
        result = service.quality(udb1_id, QualitySpec(k=2))
        assert result.payload["quality"] == pytest.approx(-2.551326, abs=1e-6)

    def test_quality_pwr_reports_result_count(self, service, udb1_id):
        result = service.quality(udb1_id, QualitySpec(k=2, method="pwr"))
        assert result.payload["num_results"] == 7

    def test_repeat_queries_reuse_the_session(self, service, udb1_id):
        first = service.query(udb1_id, QuerySpec(k=2))
        second = service.query(udb1_id, QuerySpec(k=2))
        assert first.counters["psr_misses"] == 1
        assert second.counters["psr_misses"] == 0
        assert second.payload == first.payload


class TestBatch:
    def test_mixed_k_batch_costs_one_psr_pass(self, service, small_synthetic):
        sid = service.register(small_synthetic).snapshot_id
        spec = BatchSpec(
            items=(
                QuerySpec(k=5),
                QualitySpec(k=20),
                QuerySpec(k=11, semantics="ptk"),
                QuerySpec(k=20),
                QualitySpec(k=5),
            )
        )
        result = service.batch(sid, spec)
        assert result.kind == "batch"
        assert result.payload["max_k"] == 20
        assert len(result.payload["items"]) == 5
        # The whole batch shares one max-k pass: exactly one PSR miss,
        # smaller ks seeded by prefix restriction.
        assert result.counters["psr_misses"] == 1
        assert result.counters["psr_prefills"] == 2

    def test_batch_matches_serial_service_calls(self, service, small_synthetic):
        sid = service.register(small_synthetic).snapshot_id
        items = (QuerySpec(k=4), QualitySpec(k=9), QuerySpec(k=2))
        batched = service.batch(sid, BatchSpec(items=items)).payload["items"]

        serial = TopKService()
        serial_sid = serial.register(small_synthetic).snapshot_id
        for item, spec in zip(batched, items):
            if isinstance(spec, QuerySpec):
                expected = serial.query(serial_sid, spec)
            else:
                expected = serial.quality(serial_sid, spec)
            assert_payloads_close(item["payload"], expected.payload)
            assert item["spec"] == spec.to_dict()

    def test_non_tp_quality_k_does_not_size_the_shared_pass(
        self, service, udb1
    ):
        sid = service.register(udb1).snapshot_id
        spec = BatchSpec(
            items=(
                QuerySpec(k=2),
                # Enumeration quality never reads the PSR cache; its k
                # must not inflate the shared pass.
                QualitySpec(k=6, method="pw"),
            )
        )
        result = service.batch(sid, spec)
        assert result.counters["psr_misses"] == 1
        with service.pool.lease(sid) as session:
            assert sorted(session._rank_probabilities) == [2]

    def test_warm_session_batch_costs_nothing(self, service, small_synthetic):
        sid = service.register(small_synthetic).snapshot_id
        spec = BatchSpec(items=(QuerySpec(k=5), QuerySpec(k=9)))
        service.batch(sid, BatchSpec(items=(QuerySpec(k=9),)))
        result = service.batch(sid, spec)
        assert result.counters["psr_misses"] == 0


class TestClean:
    def _full_spec(self, db, **overrides):
        kwargs = dict(
            k=2,
            budget=3,
            planner="dp",
            costs={xt.xid: 1 for xt in db.xtuples},
            sc_probabilities={xt.xid: 1.0 for xt in db.xtuples},
        )
        kwargs.update(overrides)
        return CleaningSpec(**kwargs)

    def test_clean_registers_new_snapshot(self, service, udb1, udb1_id):
        result = service.clean(udb1_id, self._full_spec(udb1))
        payload = result.payload
        assert result.snapshot_id == udb1_id
        assert payload["new_snapshot_id"] != udb1_id
        assert payload["new_snapshot_id"] in service.pool
        assert payload["expected_improvement"] == pytest.approx(
            2.551326, abs=1e-6
        )
        # Certain successes: the quality reaches the optimum of 0.
        assert payload["quality_after"] == pytest.approx(0.0, abs=1e-9)
        # The input snapshot is untouched.
        again = service.quality(udb1_id, QualitySpec(k=2))
        assert again.payload["quality"] == pytest.approx(-2.551326, abs=1e-6)

    def test_clean_runs_on_the_delta_path(self, service, udb1, udb1_id):
        result = service.clean(udb1_id, self._full_spec(udb1))
        assert result.counters["delta_derives"] >= 1
        assert result.counters["cold_derives"] == 0
        assert result.counters["psr_misses"] == 1

    def test_outcome_session_is_seeded_for_the_new_snapshot(
        self, service, udb1, udb1_id
    ):
        new_id = service.clean(udb1_id, self._full_spec(udb1)).payload[
            "new_snapshot_id"
        ]
        follow_up = service.query(new_id, QuerySpec(k=2))
        # Served from the delta-patched session: no fresh PSR pass.
        assert follow_up.counters["psr_misses"] == 0

    def test_plan_only_registers_nothing(self, service, udb1, udb1_id):
        before = service.pool.num_snapshots
        result = service.clean(
            udb1_id, self._full_spec(udb1, execute=False)
        )
        assert "new_snapshot_id" not in result.payload
        assert service.pool.num_snapshots == before

    def test_deterministic_given_seed(self, service, udb1, udb1_id):
        spec = self._full_spec(udb1, sc_probabilities=None, sc_seed=5, seed=3)
        first = service.clean(udb1_id, spec).payload
        second = service.clean(udb1_id, spec).payload
        assert first == second

    def test_adaptive_mode(self, service, small_synthetic):
        sid = service.register(small_synthetic).snapshot_id
        costs = generate_costs(small_synthetic, seed=1)
        sc = generate_sc_probabilities(small_synthetic, seed=2)
        spec = CleaningSpec(
            k=5, budget=12, costs=costs, sc_probabilities=sc, adaptive=True
        )
        result = service.clean(sid, spec)
        assert result.payload["rounds"] >= 1
        assert result.payload["cost_spent"] <= 12
        assert (
            result.payload["quality_after"]
            >= result.payload["quality_before"] - 1e-9
        )
        # The adaptive loop plans each round itself: the payload's plan
        # is round 1's probe assignment and there is no upfront
        # expected improvement.
        assert "expected_improvement" not in result.payload
        plan = result.payload["plan"]
        assert plan["total_cost"] <= 12
        assert plan["total_operations"] == sum(plan["operations"].values())

    def test_missing_cost_names_offending_xid(self, service, udb1, udb1_id):
        spec = self._full_spec(udb1)
        costs = dict(spec.costs)
        del costs["S3"]
        with pytest.raises(UnknownXTupleError, match="S3") as excinfo:
            service.clean(udb1_id, self._full_spec(udb1, costs=costs))
        assert excinfo.value.xid == "S3"
        assert excinfo.value.field == "costs"

    def test_typed_error_raised_by_shared_builder_too(self, udb1):
        # Direct library callers get the same named-xid error the
        # service surfaces (UnknownXTupleError extends the historical
        # InvalidCleaningProblemError).
        from repro.cleaning.model import build_cleaning_problem
        from repro.exceptions import InvalidCleaningProblemError

        quality = QuerySession(udb1).quality(2)
        with pytest.raises(InvalidCleaningProblemError, match="S2") as excinfo:
            build_cleaning_problem(quality, {"S1": 1}, {"S1": 0.5}, 5)
        assert isinstance(excinfo.value, UnknownXTupleError)
        assert excinfo.value.xid == "S2"  # first missing x-tuple, named

    def test_unknown_sc_xid_named(self, service, udb1, udb1_id):
        spec = self._full_spec(udb1)
        sc = dict(spec.sc_probabilities)
        sc["S99"] = 0.5
        with pytest.raises(UnknownXTupleError, match="S99"):
            service.clean(udb1_id, self._full_spec(udb1, sc_probabilities=sc))


class TestPoolSharing:
    def test_shared_pool_across_services(self, udb1):
        pool = SessionPool()
        a = TopKService(pool=pool)
        b = TopKService(pool=pool)
        sid = a.register(udb1).snapshot_id
        assert b.query(sid, QuerySpec(k=2)).payload["quality"] is not None

    def test_pool_kwargs_rejected_with_explicit_pool(self):
        with pytest.raises(ValueError):
            TopKService(pool=SessionPool(), max_sessions=3)


class TestDeprecatedEntryPoints:
    def test_warning_fires_once(self, udb1):
        import repro

        repro._warned_entry_points.discard("evaluate_without_sharing")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = repro.evaluate_without_sharing
            second = repro.evaluate_without_sharing
        assert first is second
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "evaluate_without_sharing" in str(deprecations[0].message)

    def test_shim_serves_the_canonical_function(self, udb1):
        import repro
        from repro.queries.engine import evaluate as canonical

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert repro.evaluate is canonical

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing
