"""Documentation coverage: every public item carries a docstring.

The reproduction promises doc comments on every public item; this test
makes that promise executable.  Private names (leading underscore) and
re-exports are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_have_docstrings(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    missing.append(f"{name}.{member_name}")
    assert not missing, (
        f"{module.__name__} has undocumented public items: {missing}"
    )
