"""Shared fixtures for the test suite.

The hypothesis strategies live in :mod:`strategies` (importable as a
plain module from any test file); this conftest only provides
fixtures.  The strategy names are re-exported here for backwards
compatibility with ``from conftest import ...``.
"""

from __future__ import annotations

import pytest

from strategies import (  # noqa: F401 - re-exported for back-compat
    cleaning_problems,
    databases,
    databases_with_k,
)


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    """Fail any test that strands a segment or a store temp file.

    The parallel backend tracks every shared-memory segment it creates
    (:func:`repro.core.parallel.live_segment_names`); segments owned by
    the cached :class:`~repro.core.parallel.SharedColumns` of a live
    ranked view are legitimate residents, everything else
    (:func:`~repro.core.parallel.untracked_segment_names`) is a leak --
    an output buffer or a half-published column set that survived an
    error path.  The snapshot store makes the same promise on disk: a
    ``.tmp-*`` file surviving a test means a write path skipped its
    cleanup (only a *crash* may strand one, and reopening sweeps it).
    Also disarms any fault plan a test left installed so faults never
    bleed across tests.
    """
    import repro.core.parallel as parallel
    from repro.store import stranded_temp_files
    from repro.testing import clear_faults

    yield
    clear_faults()
    leaked = parallel.untracked_segment_names()
    assert not leaked, (
        f"leaked shared-memory segments: {sorted(leaked)} "
        f"(an error path skipped its unlink)"
    )
    stranded = stranded_temp_files()
    assert not stranded, (
        f"stranded snapshot-store temp files: "
        f"{sorted(str(p) for p in stranded)} "
        f"(a non-crash error path skipped its unlink)"
    )


def assert_payloads_close(got, expected, tol=1e-9, tie_tol=1e-12):
    """Recursive service-payload equality, tolerant to float rounding.

    The batch/prefill path re-sums PSR rows in a different order than a
    direct pass, so probabilities may differ in the last ulp and tuples
    with *equal* probabilities may legitimately swap positions.  Floats
    compare within ``tol``; a tuple-id mismatch is accepted only when
    the paired probabilities agree within ``tie_tol`` (a swapped tie).
    Everything else must be exactly equal.
    """
    if isinstance(expected, dict):
        assert isinstance(got, dict) and set(got) == set(expected), (
            got,
            expected,
        )
        if set(expected) == {"rank", "tid", "probability"}:
            assert got["rank"] == expected["rank"]
            assert abs(got["probability"] - expected["probability"]) <= tol
            if got["tid"] != expected["tid"]:
                assert abs(got["probability"] - expected["probability"]) <= tie_tol
            return
        for key in expected:
            if key in ("timing_ms", "counters"):
                continue  # operational metadata; run-dependent by design
            assert_payloads_close(got[key], expected[key], tol, tie_tol)
    elif isinstance(expected, (list, tuple)):
        assert len(got) == len(expected), (got, expected)
        if all(
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], str)
            and isinstance(item[1], (int, float))
            for item in expected
        ) and expected:
            for (got_tid, got_p), (exp_tid, exp_p) in zip(got, expected):
                assert abs(got_p - exp_p) <= tol, (got_tid, got_p, exp_tid, exp_p)
                if got_tid != exp_tid:
                    assert abs(got_p - exp_p) <= tie_tol, (got_tid, exp_tid)
            return
        for got_item, exp_item in zip(got, expected):
            assert_payloads_close(got_item, exp_item, tol, tie_tol)
    elif isinstance(expected, float):
        assert isinstance(got, (int, float))
        assert got == pytest.approx(expected, abs=tol), (got, expected)
    else:
        assert got == expected, (got, expected)


@pytest.fixture
def udb1():
    from repro.datasets.paper import udb1 as factory

    return factory()


@pytest.fixture
def udb2():
    from repro.datasets.paper import udb2 as factory

    return factory()


@pytest.fixture
def small_synthetic():
    """A 30-x-tuple synthetic database (fast but non-trivial)."""
    from repro.datasets.synthetic import generate_synthetic

    return generate_synthetic(num_xtuples=30, seed=42)
