"""Shared fixtures for the test suite.

The hypothesis strategies live in :mod:`strategies` (importable as a
plain module from any test file); this conftest only provides
fixtures.  The strategy names are re-exported here for backwards
compatibility with ``from conftest import ...``.
"""

from __future__ import annotations

import pytest

from strategies import (  # noqa: F401 - re-exported for back-compat
    cleaning_problems,
    databases,
    databases_with_k,
)


@pytest.fixture
def udb1():
    from repro.datasets.paper import udb1 as factory

    return factory()


@pytest.fixture
def udb2():
    from repro.datasets.paper import udb2 as factory

    return factory()


@pytest.fixture
def small_synthetic():
    """A 30-x-tuple synthetic database (fast but non-trivial)."""
    from repro.datasets.synthetic import generate_synthetic

    return generate_synthetic(num_xtuples=30, seed=42)
