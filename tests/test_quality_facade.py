"""The compute_quality facade and cross-method agreement."""

import pytest

from repro.core.quality import (
    METHODS,
    compute_quality,
    compute_quality_detailed,
)
from repro.db.ranking import by_value


class TestFacade:
    def test_all_methods_agree_on_udb1(self, udb1):
        values = {
            method: compute_quality(udb1, 2, method=method)
            for method in ("tp", "pwr", "pw")
        }
        reference = values["pw"]
        for method, value in values.items():
            assert value == pytest.approx(reference, abs=1e-9), method

    def test_montecarlo_is_approximate(self, udb1):
        value = compute_quality(udb1, 2, method="montecarlo", num_samples=20_000)
        assert value == pytest.approx(-2.55, abs=0.05)

    def test_detailed_returns_method_objects(self, udb1):
        tp = compute_quality_detailed(udb1, 2, method="tp")
        assert hasattr(tp, "rank_probabilities")
        pwr = compute_quality_detailed(udb1, 2, method="pwr", collect=True)
        assert pwr.distribution is not None

    def test_unknown_method_rejected(self, udb1):
        with pytest.raises(ValueError):
            compute_quality(udb1, 2, method="quantum")

    def test_methods_constant_is_exhaustive(self, udb1):
        for method in METHODS:
            kwargs = {"num_samples": 100} if method == "montecarlo" else {}
            compute_quality(udb1, 2, method=method, **kwargs)

    def test_accepts_prebuilt_ranked_view(self, udb1):
        ranked = udb1.ranked()
        assert compute_quality(ranked, 2) == pytest.approx(
            compute_quality(udb1, 2)
        )

    def test_ranking_override_on_ranked_view_rejected(self, udb1):
        ranked = udb1.ranked()
        with pytest.raises(ValueError):
            compute_quality(ranked, 2, ranking=by_value())

    def test_custom_ranking_changes_result(self, udb1):
        from repro.db.ranking import custom

        ascending = custom(lambda t: -float(t.value), name="asc")
        default = compute_quality(udb1, 2)
        flipped = compute_quality(udb1, 2, ranking=ascending)
        assert default != pytest.approx(flipped)
