"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.api import QuerySpec, ServiceResult, spec_from_dict
from repro.cli import main
from repro.db import io
from repro.datasets.paper import udb1


@pytest.fixture
def synthetic_db_file(tmp_path):
    path = tmp_path / "db.json"
    code = main(
        [
            "generate",
            "synthetic",
            "--output",
            str(path),
            "--xtuples",
            "50",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


@pytest.fixture
def udb1_file(tmp_path):
    path = tmp_path / "udb1.json"
    io.save_json(udb1(), path)
    return path


class TestGenerate:
    def test_synthetic(self, synthetic_db_file, capsys):
        db = io.load_json(synthetic_db_file)
        assert db.num_xtuples == 50
        assert db.num_tuples == 500

    def test_mov(self, tmp_path, capsys):
        path = tmp_path / "mov.json"
        assert main(["generate", "mov", "-o", str(path), "--xtuples", "40"]) == 0
        db = io.load_json(path)
        assert db.num_xtuples == 40
        out = capsys.readouterr().out
        assert "40 x-tuples" in out

    def test_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "synthetic", "-o", str(a), "--xtuples", "10", "--seed", "9"])
        main(["generate", "synthetic", "-o", str(b), "--xtuples", "10", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestQuality:
    def test_tp_matches_paper(self, udb1_file, capsys):
        assert main(["quality", "--db", str(udb1_file), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "-2.551326" in out

    @pytest.mark.parametrize("method", ["pw", "pwr", "tp"])
    def test_all_methods_agree(self, udb1_file, capsys, method):
        main(["quality", "--db", str(udb1_file), "-k", "2", "--method", method])
        out = capsys.readouterr().out
        assert "-2.551326" in out

    def test_pwr_reports_result_count(self, udb1_file, capsys):
        main(["quality", "--db", str(udb1_file), "-k", "2", "--method", "pwr"])
        assert "distinct pw-results: 7" in capsys.readouterr().out

    def test_montecarlo_samples_flag(self, udb1_file, capsys):
        main(
            [
                "quality",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--method",
                "montecarlo",
                "--samples",
                "2000",
            ]
        )
        assert "PWS-quality" in capsys.readouterr().out


class TestQuery:
    def test_ptk_paper_answer(self, udb1_file, capsys):
        main(
            [
                "query",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--semantics",
                "ptk",
                "--threshold",
                "0.4",
            ]
        )
        out = capsys.readouterr().out
        assert "['t1', 't2', 't5']" in out

    def test_all_semantics(self, udb1_file, capsys):
        main(["query", "--db", str(udb1_file), "-k", "2"])
        out = capsys.readouterr().out
        assert "PT-2" in out
        assert "U-kRanks" in out
        assert "Global-top2" in out
        assert "PWS-quality" in out


class TestClean:
    def test_plan_only(self, synthetic_db_file, capsys):
        assert (
            main(
                [
                    "clean",
                    "--db",
                    str(synthetic_db_file),
                    "-k",
                    "5",
                    "--budget",
                    "20",
                    "--planner",
                    "dp",
                    "-v",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "expected improvement" in out
        assert "pclean(" in out

    def test_execute_and_write(self, synthetic_db_file, tmp_path, capsys):
        cleaned_path = tmp_path / "cleaned.json"
        main(
            [
                "clean",
                "--db",
                str(synthetic_db_file),
                "-k",
                "5",
                "--budget",
                "20",
                "--execute",
                "-o",
                str(cleaned_path),
            ]
        )
        out = capsys.readouterr().out
        assert "simulated execution" in out
        cleaned = io.load_json(cleaned_path)
        assert cleaned.num_xtuples == 50

    def test_explicit_cost_and_sc_files(self, udb1_file, tmp_path, capsys):
        costs = tmp_path / "costs.json"
        sc = tmp_path / "sc.json"
        costs.write_text(json.dumps({"S1": 1, "S2": 1, "S3": 1, "S4": 1}))
        sc.write_text(json.dumps({"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0}))
        main(
            [
                "clean",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--budget",
                "3",
                "--planner",
                "dp",
                "--costs",
                str(costs),
                "--sc",
                str(sc),
            ]
        )
        out = capsys.readouterr().out
        # With P=1 and unit costs, budget 3 cleans all three uncertain
        # sensors: expected improvement = |S| = 2.551326.
        assert "expected improvement: 2.551326" in out

    @pytest.mark.parametrize("planner", ["dp", "greedy", "randp", "randu"])
    def test_every_planner_runs(self, synthetic_db_file, capsys, planner):
        assert (
            main(
                [
                    "clean",
                    "--db",
                    str(synthetic_db_file),
                    "-k",
                    "5",
                    "--budget",
                    "10",
                    "--planner",
                    planner,
                ]
            )
            == 0
        )


class TestJsonRoundTrip:
    def test_query_envelope_is_wire_ready(self, udb1_file, tmp_path, capsys):
        out = tmp_path / "query.json"
        assert (
            main(
                [
                    "query",
                    "--db",
                    str(udb1_file),
                    "-k",
                    "2",
                    "--threshold",
                    "0.4",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        envelope = json.loads(out.read_text())
        assert envelope["command"] == "query"
        assert envelope["db"] == str(udb1_file)
        result = ServiceResult.from_dict(envelope["result"])
        assert result.kind == "query"
        assert spec_from_dict(result.spec) == QuerySpec(k=2, threshold=0.4)
        assert [t for t, _ in result.payload["ptk"]["members"]] == [
            "t1",
            "t2",
            "t5",
        ]

    def test_query_output_feeds_clean_input(self, udb1_file, tmp_path, capsys):
        query_out = tmp_path / "query.json"
        main(
            [
                "query",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--json",
                str(query_out),
            ]
        )
        clean_out = tmp_path / "clean.json"
        costs = tmp_path / "costs.json"
        sc = tmp_path / "sc.json"
        costs.write_text(json.dumps({"S1": 1, "S2": 1, "S3": 1, "S4": 1}))
        sc.write_text(json.dumps({"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0}))
        assert (
            main(
                [
                    "clean",
                    "--from",
                    str(query_out),
                    "--budget",
                    "3",
                    "--planner",
                    "dp",
                    "--costs",
                    str(costs),
                    "--sc",
                    str(sc),
                    "--execute",
                    "--json",
                    str(clean_out),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # k, db and ranking flowed from the query envelope: with unit
        # costs and P=1 at k=2, budget 3 cleans all the ambiguity.
        assert "expected improvement: 2.551326" in out
        envelope = json.loads(clean_out.read_text())
        result = ServiceResult.from_dict(envelope["result"])
        assert result.kind == "clean"
        assert result.payload["quality_after"] == pytest.approx(0.0, abs=1e-9)
        assert (
            result.payload["new_snapshot_id"] != result.snapshot_id
        )

    def test_clean_executes_and_writes_via_service(
        self, synthetic_db_file, tmp_path, capsys
    ):
        clean_json = tmp_path / "clean.json"
        cleaned_db = tmp_path / "cleaned.json"
        main(
            [
                "clean",
                "--db",
                str(synthetic_db_file),
                "-k",
                "5",
                "--budget",
                "20",
                "--execute",
                "-o",
                str(cleaned_db),
                "--json",
                str(clean_json),
            ]
        )
        envelope = json.loads(clean_json.read_text())
        result = ServiceResult.from_dict(envelope["result"])
        written = io.load_json(cleaned_db)
        # The db written on disk is the same content as the snapshot
        # registered under the reported id.
        assert (
            "snap-" + written.content_hash()[:16]
            == result.payload["new_snapshot_id"]
        )

    def test_explicit_ranking_overrides_from_envelope(
        self, synthetic_db_file, tmp_path, capsys
    ):
        # An envelope claiming the mov ranking over a numeric-valued
        # synthetic db: following it would crash (mov scores index into
        # mapping values), so a successful run proves the explicit
        # --ranking flag won over the envelope.
        envelope = tmp_path / "env.json"
        envelope.write_text(
            json.dumps(
                {
                    "command": "query",
                    "db": str(synthetic_db_file),
                    "ranking": "mov",
                    "result": {"spec": {"type": "query", "k": 3}},
                }
            )
        )
        clean_out = tmp_path / "c.json"
        assert (
            main(
                [
                    "clean",
                    "--from",
                    str(envelope),
                    "--budget",
                    "5",
                    "--ranking",
                    "value",
                    "--json",
                    str(clean_out),
                ]
            )
            == 0
        )
        recorded = json.loads(clean_out.read_text())
        assert recorded["ranking"] == "value"
        assert recorded["result"]["spec"]["k"] == 3

    def test_from_envelope_supplies_ranking_when_flag_absent(
        self, tmp_path, capsys
    ):
        mov_db = tmp_path / "mov.json"
        main(["generate", "mov", "-o", str(mov_db), "--xtuples", "15"])
        query_out = tmp_path / "q.json"
        main(
            [
                "query",
                "--db",
                str(mov_db),
                "-k",
                "3",
                "--ranking",
                "mov",
                "--json",
                str(query_out),
            ]
        )
        clean_out = tmp_path / "c.json"
        assert (
            main(
                [
                    "clean",
                    "--from",
                    str(query_out),
                    "--budget",
                    "5",
                    "--json",
                    str(clean_out),
                ]
            )
            == 0
        )
        assert json.loads(clean_out.read_text())["ranking"] == "mov"

    def test_generate_envelope(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        out = tmp_path / "gen.json"
        main(
            [
                "generate",
                "synthetic",
                "-o",
                str(path),
                "--xtuples",
                "10",
                "--json",
                str(out),
            ]
        )
        envelope = json.loads(out.read_text())
        result = ServiceResult.from_dict(envelope["result"])
        assert result.kind == "register"
        assert result.payload["num_xtuples"] == 10
        assert result.snapshot_id == "snap-" + io.load_json(path).content_hash()[:16]

    def test_generate_mov_envelope_uses_mov_ranking(self, tmp_path, capsys):
        path = tmp_path / "mov.json"
        out = tmp_path / "gen.json"
        assert (
            main(
                [
                    "generate",
                    "mov",
                    "-o",
                    str(path),
                    "--xtuples",
                    "10",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        envelope = json.loads(out.read_text())
        # mov values are mappings; the envelope must register (and
        # record) the mov ranking so chained commands inherit it.
        assert envelope["ranking"] == "mov"
        assert (
            main(["clean", "--from", str(out), "--budget", "5", "-k", "3"])
            == 0
        )


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_planner_rejected(self, udb1_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "clean",
                    "--db",
                    str(udb1_file),
                    "--budget",
                    "5",
                    "--planner",
                    "magic",
                ]
            )

    def test_unknown_ranking_rejected(self, udb1_file):
        with pytest.raises(SystemExit):
            main(["quality", "--db", str(udb1_file), "--ranking", "bogus"])
