"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.db import io
from repro.datasets.paper import udb1


@pytest.fixture
def synthetic_db_file(tmp_path):
    path = tmp_path / "db.json"
    code = main(
        [
            "generate",
            "synthetic",
            "--output",
            str(path),
            "--xtuples",
            "50",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


@pytest.fixture
def udb1_file(tmp_path):
    path = tmp_path / "udb1.json"
    io.save_json(udb1(), path)
    return path


class TestGenerate:
    def test_synthetic(self, synthetic_db_file, capsys):
        db = io.load_json(synthetic_db_file)
        assert db.num_xtuples == 50
        assert db.num_tuples == 500

    def test_mov(self, tmp_path, capsys):
        path = tmp_path / "mov.json"
        assert main(["generate", "mov", "-o", str(path), "--xtuples", "40"]) == 0
        db = io.load_json(path)
        assert db.num_xtuples == 40
        out = capsys.readouterr().out
        assert "40 x-tuples" in out

    def test_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "synthetic", "-o", str(a), "--xtuples", "10", "--seed", "9"])
        main(["generate", "synthetic", "-o", str(b), "--xtuples", "10", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestQuality:
    def test_tp_matches_paper(self, udb1_file, capsys):
        assert main(["quality", "--db", str(udb1_file), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "-2.551326" in out

    @pytest.mark.parametrize("method", ["pw", "pwr", "tp"])
    def test_all_methods_agree(self, udb1_file, capsys, method):
        main(["quality", "--db", str(udb1_file), "-k", "2", "--method", method])
        out = capsys.readouterr().out
        assert "-2.551326" in out

    def test_pwr_reports_result_count(self, udb1_file, capsys):
        main(["quality", "--db", str(udb1_file), "-k", "2", "--method", "pwr"])
        assert "distinct pw-results: 7" in capsys.readouterr().out

    def test_montecarlo_samples_flag(self, udb1_file, capsys):
        main(
            [
                "quality",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--method",
                "montecarlo",
                "--samples",
                "2000",
            ]
        )
        assert "PWS-quality" in capsys.readouterr().out


class TestQuery:
    def test_ptk_paper_answer(self, udb1_file, capsys):
        main(
            [
                "query",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--semantics",
                "ptk",
                "--threshold",
                "0.4",
            ]
        )
        out = capsys.readouterr().out
        assert "['t1', 't2', 't5']" in out

    def test_all_semantics(self, udb1_file, capsys):
        main(["query", "--db", str(udb1_file), "-k", "2"])
        out = capsys.readouterr().out
        assert "PT-2" in out
        assert "U-kRanks" in out
        assert "Global-top2" in out
        assert "PWS-quality" in out


class TestClean:
    def test_plan_only(self, synthetic_db_file, capsys):
        assert (
            main(
                [
                    "clean",
                    "--db",
                    str(synthetic_db_file),
                    "-k",
                    "5",
                    "--budget",
                    "20",
                    "--planner",
                    "dp",
                    "-v",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "expected improvement" in out
        assert "pclean(" in out

    def test_execute_and_write(self, synthetic_db_file, tmp_path, capsys):
        cleaned_path = tmp_path / "cleaned.json"
        main(
            [
                "clean",
                "--db",
                str(synthetic_db_file),
                "-k",
                "5",
                "--budget",
                "20",
                "--execute",
                "-o",
                str(cleaned_path),
            ]
        )
        out = capsys.readouterr().out
        assert "simulated execution" in out
        cleaned = io.load_json(cleaned_path)
        assert cleaned.num_xtuples == 50

    def test_explicit_cost_and_sc_files(self, udb1_file, tmp_path, capsys):
        costs = tmp_path / "costs.json"
        sc = tmp_path / "sc.json"
        costs.write_text(json.dumps({"S1": 1, "S2": 1, "S3": 1, "S4": 1}))
        sc.write_text(json.dumps({"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0}))
        main(
            [
                "clean",
                "--db",
                str(udb1_file),
                "-k",
                "2",
                "--budget",
                "3",
                "--planner",
                "dp",
                "--costs",
                str(costs),
                "--sc",
                str(sc),
            ]
        )
        out = capsys.readouterr().out
        # With P=1 and unit costs, budget 3 cleans all three uncertain
        # sensors: expected improvement = |S| = 2.551326.
        assert "expected improvement: 2.551326" in out

    @pytest.mark.parametrize("planner", ["dp", "greedy", "randp", "randu"])
    def test_every_planner_runs(self, synthetic_db_file, capsys, planner):
        assert (
            main(
                [
                    "clean",
                    "--db",
                    str(synthetic_db_file),
                    "-k",
                    "5",
                    "--budget",
                    "10",
                    "--planner",
                    planner,
                ]
            )
            == 0
        )


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_planner_rejected(self, udb1_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "clean",
                    "--db",
                    str(udb1_file),
                    "--budget",
                    "5",
                    "--planner",
                    "magic",
                ]
            )

    def test_unknown_ranking_rejected(self, udb1_file):
        with pytest.raises(SystemExit):
            main(["quality", "--db", str(udb1_file), "--ranking", "bogus"])
