"""Unit tests for entropy helpers (repro.core.entropy)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.entropy import (
    entropy,
    negated_entropy,
    quality_lower_bound,
    quality_of_distribution,
    xlog2x,
)


class TestXlog2x:
    def test_zero(self):
        assert xlog2x(0.0) == 0.0

    def test_negative_clamped(self):
        assert xlog2x(-1e-18) == 0.0

    def test_one(self):
        assert xlog2x(1.0) == 0.0

    def test_half(self):
        assert xlog2x(0.5) == pytest.approx(-0.5)

    @given(st.floats(min_value=1e-12, max_value=1.0))
    def test_nonpositive_on_unit_interval(self, x):
        assert xlog2x(x) <= 0.0


class TestNegatedEntropy:
    def test_certain_distribution_is_zero(self):
        assert negated_entropy([1.0]) == 0.0

    def test_uniform_two_outcomes(self):
        assert negated_entropy([0.5, 0.5]) == pytest.approx(-1.0)

    def test_uniform_n_outcomes_hits_lower_bound(self):
        for n in (2, 4, 8, 16):
            probs = [1.0 / n] * n
            assert negated_entropy(probs) == pytest.approx(
                quality_lower_bound(n)
            )

    def test_skips_zero_entries(self):
        assert negated_entropy([0.5, 0.5, 0.0]) == pytest.approx(-1.0)

    def test_entropy_is_negation(self):
        probs = [0.2, 0.3, 0.5]
        assert entropy(probs) == pytest.approx(-negated_entropy(probs))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8)
    )
    def test_bounds(self, weights):
        total = sum(weights)
        probs = [w / total for w in weights]
        q = negated_entropy(probs)
        assert quality_lower_bound(len(probs)) - 1e-9 <= q <= 0.0


class TestQualityOfDistribution:
    def test_paper_figure2(self):
        distribution = {
            ("t2", "t6"): 0.168,
            ("t2", "t5"): 0.252,
            ("t6", "t4"): 0.072,
            ("t5", "t6"): 0.108,
            ("t1", "t2"): 0.28,
            ("t1", "t6"): 0.048,
            ("t1", "t5"): 0.072,
        }
        assert quality_of_distribution(distribution) == pytest.approx(
            -2.55, abs=0.005
        )

    def test_lower_bound_validates(self):
        with pytest.raises(ValueError):
            quality_lower_bound(0)
