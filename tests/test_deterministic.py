"""Unit tests for deterministic top-k over one world."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.possible_worlds import iter_worlds
from repro.exceptions import InvalidQueryError
from repro.queries.deterministic import require_valid_k, topk_of_world

from strategies import databases


class TestRequireValidK:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_rejects_bad_k(self, bad):
        with pytest.raises(InvalidQueryError):
            require_valid_k(bad)

    def test_accepts_positive_ints(self):
        require_valid_k(1)
        require_valid_k(100)


class TestTopkOfWorld:
    def test_paper_example_world(self, udb1):
        ranked = udb1.ranked()
        # World {t0, t3, t4, t6}: top-2 by temperature is (t6, t4).
        world = next(
            w
            for w in iter_worlds(udb1)
            if {t.tid for t in w.real_tuples} == {"t0", "t3", "t4", "t6"}
        )
        assert topk_of_world(ranked, world, 2) == ("t6", "t4")

    def test_k_larger_than_world_gives_short_result(self, udb1):
        ranked = udb1.ranked()
        world = next(iter_worlds(udb1))
        result = topk_of_world(ranked, world, 10)
        assert len(result) == 4  # one real tuple per complete x-tuple

    @settings(max_examples=50)
    @given(databases(), st.integers(1, 5))
    def test_results_are_rank_sorted_and_present(self, db, k):
        ranked = db.ranked()
        for world in iter_worlds(db):
            result = topk_of_world(ranked, world, k)
            assert len(result) == min(k, len(world.real_tuples))
            positions = [ranked.rank_of(tid) for tid in result]
            assert positions == sorted(positions)
            present = {t.tid for t in world.real_tuples}
            assert all(tid in present for tid in result)

    @settings(max_examples=30)
    @given(databases(), st.integers(1, 5))
    def test_result_is_prefix_of_present_tuples(self, db, k):
        ranked = db.ranked()
        for world in iter_worlds(db):
            present = {t.tid for t in world.real_tuples}
            expected = [t.tid for t in ranked.order if t.tid in present][:k]
            assert list(topk_of_world(ranked, world, k)) == expected
