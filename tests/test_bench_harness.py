"""Unit tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench.harness import SCALES, BenchScale, Table, current_scale, time_call


class TestScales:
    def test_all_tiers_present(self):
        assert set(SCALES) == {"quick", "default", "full"}

    def test_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "default"

    @pytest.mark.parametrize("tier", ["quick", "default", "full"])
    def test_env_selection(self, monkeypatch, tier):
        monkeypatch.setenv("REPRO_BENCH_SCALE", tier)
        assert current_scale().name == tier

    def test_unknown_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ValueError):
            current_scale()

    def test_tiers_are_ordered_by_size(self):
        assert SCALES["quick"].synth_m <= SCALES["default"].synth_m
        assert SCALES["default"].synth_m <= SCALES["full"].synth_m
        assert SCALES["quick"].budget_max <= SCALES["full"].budget_max


class TestTimeCall:
    def test_returns_positive_milliseconds(self):
        assert time_call(lambda: sum(range(1000)), repeats=2) > 0.0

    def test_time_budget_stops_repeats(self):
        import time

        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.05)

        time_call(slow, repeats=10, time_budget_s=0.01)
        assert len(calls) == 1


class TestTable:
    def _table(self):
        t = Table(
            experiment="figX",
            title="demo",
            columns=["k", "S"],
            notes="a note",
        )
        t.add_row(1, -1.5)
        t.add_row(2, None)
        return t

    def test_add_row_validates_width(self):
        t = self._table()
        with pytest.raises(ValueError):
            t.add_row(1, 2, 3)

    def test_column_access(self):
        t = self._table()
        assert t.column("k") == [1, 2]
        assert t.column("S") == [-1.5, None]
        with pytest.raises(ValueError):
            t.column("missing")

    def test_format_contains_everything(self):
        text = self._table().format()
        assert "figX" in text
        assert "demo" in text
        assert "-1.5" in text
        assert "a note" in text
        assert "-" in text  # None rendered as '-'

    def test_format_cell_styles(self):
        assert Table._format_cell(None) == "-"
        assert Table._format_cell(0.0) == "0"
        assert Table._format_cell(1234.5678) == "1.23e+03"
        assert Table._format_cell(0.004) == "0.004"
        assert Table._format_cell(12.3456) == "12.346"
        assert Table._format_cell("text") == "text"

    def test_save_roundtrip(self, tmp_path):
        t = self._table()
        path = t.save(tmp_path)
        assert path.name == "figX.txt"
        assert path.read_text().startswith("== figX")

    def test_empty_table_formats(self):
        t = Table(experiment="e", title="t", columns=["a"])
        assert "a" in t.format()
