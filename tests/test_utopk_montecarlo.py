"""Tests for the U-Topk extension and the Monte-Carlo quality estimator."""

import random

import pytest
from hypothesis import given, settings

from repro.core.montecarlo import compute_quality_montecarlo
from repro.core.pw import compute_quality_pw
from repro.queries import utopk
from repro.queries.brute_force import (
    most_probable_results,
    pw_result_distribution,
)

from strategies import databases_with_k


class TestUTopk:
    def test_paper_example(self, udb1):
        # Figure 2: (t1, t2) with 0.28 is the most probable pw-result.
        answer = utopk.evaluate(udb1.ranked(), 2)
        assert answer.result == ("t1", "t2")
        assert answer.probability == pytest.approx(0.28)

    def test_udb2(self, udb2):
        answer = utopk.evaluate(udb2.ranked(), 2)
        assert answer.result == ("t2", "t5")
        assert answer.probability == pytest.approx(0.42)

    @settings(max_examples=60, deadline=None)
    @given(databases_with_k())
    def test_matches_distribution_mode(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        answer = utopk.evaluate(ranked, k)
        distribution = pw_result_distribution(ranked, k)
        (_, best_probability), = most_probable_results(distribution, 1)
        assert answer.probability == pytest.approx(best_probability, abs=1e-9)
        assert distribution[answer.result] == pytest.approx(
            answer.probability, abs=1e-9
        )


class TestMonteCarlo:
    def test_estimates_paper_quality(self, udb1):
        estimate = compute_quality_montecarlo(
            udb1.ranked(), 2, num_samples=20_000, rng=random.Random(1)
        )
        assert estimate.quality == pytest.approx(-2.55, abs=0.05)
        assert estimate.num_distinct_results == 7

    def test_std_error_shrinks_with_samples(self, udb1):
        small = compute_quality_montecarlo(
            udb1.ranked(), 2, num_samples=500, rng=random.Random(2)
        )
        large = compute_quality_montecarlo(
            udb1.ranked(), 2, num_samples=50_000, rng=random.Random(2)
        )
        assert large.std_error < small.std_error

    def test_certain_database_estimates_zero(self, udb2):
        # udb2 top-1: t1 vs t2 still uncertain; use a fully certain toy.
        from repro.db.database import ProbabilisticDatabase
        from repro.db.tuples import make_xtuple

        db = ProbabilisticDatabase(
            [make_xtuple("a", [("t0", 5.0, 1.0)])]
        )
        estimate = compute_quality_montecarlo(db.ranked(), 1, num_samples=100)
        assert estimate.quality == pytest.approx(0.0, abs=1e-12)
        assert estimate.std_error == 0.0

    def test_invalid_sample_count(self, udb1):
        with pytest.raises(ValueError):
            compute_quality_montecarlo(udb1.ranked(), 2, num_samples=0)

    def test_distribution_is_normalized(self, udb1):
        import math

        estimate = compute_quality_montecarlo(
            udb1.ranked(), 2, num_samples=1000, rng=random.Random(3)
        )
        assert math.fsum(estimate.distribution.values()) == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(databases_with_k(complete=True))
    def test_estimator_within_tolerance_of_exact(self, db_k):
        db, k = db_k
        ranked = db.ranked()
        exact = compute_quality_pw(ranked, k).quality
        estimate = compute_quality_montecarlo(
            ranked, k, num_samples=4000, rng=random.Random(4)
        )
        # Loose bound: plug-in entropy on <= ~50 outcomes at 4000 samples.
        assert estimate.quality == pytest.approx(exact, abs=0.15)
