"""Resilient-serving tests: supervision, degradation, deadlines, faults.

Every recovery path of the parallel backend is exercised through the
deterministic fault harness (:mod:`repro.testing.faults`): crashed
workers, hung workers, shm-attach failures, retry exhaustion down the
degradation ladder (pool -> in-process shards -> NumPy kernel).  Each
recovered run must match the fault-free NumPy oracle within 1e-9, leak
no shared-memory segments (the autouse conftest fixture enforces
this), and surface the recovery in the ``psr_retries`` /
``psr_pool_restarts`` / ``psr_degraded`` counters.

Service-level: deadline shedding (an expired deadline consumes no PSR
pass), the admission gate (``ServiceOverloadedError`` on saturation),
spec round-trips for ``deadline_ms`` / ``retry_policy``, and the CLI's
typed JSON error envelope.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.parallel as parallel
from repro.api.pool import SessionPool
from repro.api.service import TopKService
from repro.api.specs import BatchSpec, QualitySpec, QuerySpec, spec_from_dict
from repro.cli import main as cli_main
from repro.core.resilience import (
    Deadline,
    RetryPolicy,
    check_deadline,
    current_deadline,
    default_retry_policy,
    interruptible_sleep,
    resolve_retry_policy,
    scoped,
)
from repro.datasets.synthetic import generate_synthetic
from repro.db import io
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectedError,
    InvalidSpecError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    ServiceOverloadedError,
)
from repro.queries.engine import QuerySession
from repro.queries.psr import compute_rank_probabilities
from repro.testing import FaultEvent, FaultPlan, active_faults, use_faults

ABS = 1e-9


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    yield
    parallel.shutdown_pool()


@pytest.fixture()
def fault_env(monkeypatch):
    """Small blocks, two workers, a snappy progress timeout."""
    monkeypatch.setenv("REPRO_BLOCK_ROWS", "16")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_TASK_TIMEOUT_MS", "2000")
    monkeypatch.setenv("REPRO_BACKOFF_MS", "1")


@pytest.fixture(scope="module")
def ranked_db():
    return generate_synthetic(num_xtuples=120, seed=7).ranked()


@pytest.fixture(scope="module")
def oracle(ranked_db):
    return compute_rank_probabilities(ranked_db, 10, backend="numpy")


def _assert_matches(result, oracle):
    assert result.cutoff == oracle.cutoff
    assert result.rho_prefix == pytest.approx(oracle.rho_prefix, abs=ABS)
    assert result.topk_prefix == pytest.approx(oracle.topk_prefix, abs=ABS)


# ---------------------------------------------------------------------------
# RetryPolicy / Deadline primitives
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_and_round_trip(self):
        policy = RetryPolicy(max_attempts=5, backoff_ms=10.0, jitter=0.25)
        wire = json.loads(json.dumps(policy.to_dict()))
        assert RetryPolicy.from_dict(wire) == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": True},
            {"backoff_ms": -1.0},
            {"jitter": 1.5},
            {"task_timeout_ms": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidSpecError):
            RetryPolicy(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidSpecError):
            RetryPolicy.from_dict({"max_attempts": 2, "nope": 1})

    def test_backoff_deterministic_capped_exponential(self):
        policy = RetryPolicy(backoff_ms=100.0, max_backoff_ms=250.0, jitter=0.0)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(2) == pytest.approx(0.1)
        assert policy.backoff_s(3) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.25)  # capped
        jittered = RetryPolicy(backoff_ms=100.0, jitter=0.5)
        # Seeded per attempt: the same attempt always sleeps the same.
        assert jittered.backoff_s(3) == jittered.backoff_s(3)
        assert 0.1 <= jittered.backoff_s(3) <= 0.2

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_BACKOFF_MS", "3")
        policy = default_retry_policy()
        assert policy.max_attempts == 7
        assert policy.backoff_ms == 3.0
        monkeypatch.setenv("REPRO_TASK_TIMEOUT_MS", "1500")
        assert policy.resolved_task_timeout_s() == pytest.approx(1.5)

    def test_resolution_order(self):
        explicit = RetryPolicy(max_attempts=9)
        scoped_policy = RetryPolicy(max_attempts=4)
        with scoped(retry_policy=scoped_policy):
            assert resolve_retry_policy() is scoped_policy
            assert resolve_retry_policy(explicit) is explicit
        assert resolve_retry_policy().max_attempts == 3


class TestDeadline:
    def test_scoped_check_and_restore(self):
        assert current_deadline() is None
        with scoped(deadline=Deadline.after_ms(60_000.0)):
            assert current_deadline() is not None
            check_deadline("mid-test")  # plenty of budget: no raise
        assert current_deadline() is None

    def test_expired_deadline_raises(self):
        with scoped(deadline=Deadline.after_ms(1e-6)):
            time.sleep(0.001)
            with pytest.raises(DeadlineExceededError, match="mid-test"):
                check_deadline("mid-test")

    def test_interruptible_sleep_clamps_to_deadline(self):
        with scoped(deadline=Deadline.after_ms(30.0)):
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                interruptible_sleep(10.0)
            assert time.monotonic() - start < 5.0

    def test_nested_scopes_restore_outer(self):
        outer = Deadline.after_ms(60_000.0)
        with scoped(deadline=outer):
            with scoped(deadline=Deadline.after_ms(30_000.0)):
                assert current_deadline() is not outer
            assert current_deadline() is outer


# ---------------------------------------------------------------------------
# The fault plan itself
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_draw_consumes_budget(self):
        plan = FaultPlan([FaultEvent(kind="kill", times=2)])
        assert plan.draw("task", 0) == {"kind": "kill"}
        assert plan.draw("task", 5) == {"kind": "kill"}
        assert plan.draw("task", 1) is None
        assert plan.fired("kill") == 2

    def test_block_scoping_and_points(self):
        plan = FaultPlan(
            [
                FaultEvent(kind="attach", block=3),
                FaultEvent(kind="serial", times=1),
            ]
        )
        assert plan.draw("task", 0) is None  # wrong block
        assert plan.draw("serial", 0) == {"kind": "serial"}
        assert plan.draw("task", 3) == {"kind": "attach"}
        assert plan.draw("task", 3) is None  # budget spent

    def test_plan_copy_is_fresh(self):
        event = FaultEvent(kind="kill", times=1)
        plan_a, plan_b = FaultPlan([event]), FaultPlan([event])
        assert plan_a.draw("task", 0) is not None
        assert plan_b.draw("task", 0) is not None  # own budget

    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultEvent(kind="hang", block=2, times=3, delay_ms=50.0)]
        )
        clone = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert [e.to_dict() for e in clone.events] == [
            e.to_dict() for e in plan.events
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "meteor"},
            {"kind": "kill", "times": 0},
            {"kind": "kill", "block": -1},
            {"kind": "hang", "delay_ms": 0},
            {"kind": "kill", "surprise": 1},
        ],
    )
    def test_event_validation(self, payload):
        with pytest.raises(InvalidSpecError):
            FaultEvent.from_dict(payload)

    def test_env_activation(self, monkeypatch):
        plan = FaultPlan([FaultEvent(kind="slow", times=1)])
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan.to_dict()))
        armed = active_faults()
        assert armed is not None
        assert armed.events[0].kind == "slow"
        # Parsed once: the same (budget-carrying) plan comes back.
        assert active_faults() is armed


# ---------------------------------------------------------------------------
# Supervised recovery in the parallel backend
# ---------------------------------------------------------------------------
class TestFaultRecovery:
    """Each injected fault recovers to a 1e-9-identical answer."""

    def test_worker_crash_recovers(self, fault_env, ranked_db, oracle):
        plan = FaultPlan([FaultEvent(kind="kill", times=1)])
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        assert plan.fired("kill") == 1
        info = result.parallel_info
        assert info["mode"] == "pool"
        assert info["degraded"] is None
        assert info["retries"] >= 1
        assert info["pool_restarts"] >= 1
        _assert_matches(result, oracle)

    def test_worker_hang_recovers(self, fault_env, ranked_db, oracle):
        # Sleep far past the 2s progress timeout: the supervisor must
        # declare a hang, kill the pool, and retry on a fresh one.
        plan = FaultPlan(
            [FaultEvent(kind="hang", times=1, delay_ms=60_000.0)]
        )
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        assert plan.fired("hang") == 1
        info = result.parallel_info
        assert info["degraded"] is None
        assert info["retries"] >= 1
        assert info["pool_restarts"] >= 1
        _assert_matches(result, oracle)

    def test_attach_failure_recovers_without_restart(
        self, fault_env, ranked_db, oracle
    ):
        plan = FaultPlan([FaultEvent(kind="attach", times=1)])
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        assert plan.fired("attach") == 1
        info = result.parallel_info
        assert info["degraded"] is None
        assert info["retries"] >= 1
        assert info["pool_restarts"] == 0  # the pool stayed healthy
        _assert_matches(result, oracle)

    def test_slow_worker_is_not_a_fault(self, fault_env, ranked_db, oracle):
        plan = FaultPlan([FaultEvent(kind="slow", times=2, delay_ms=20.0)])
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        info = result.parallel_info
        assert info["mode"] == "pool"
        assert info["retries"] == 0
        assert info["pool_restarts"] == 0
        _assert_matches(result, oracle)

    def test_retry_exhaustion_degrades_to_serial(
        self, fault_env, ranked_db, oracle
    ):
        plan = FaultPlan([FaultEvent(kind="attach", times=1000)])
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        info = result.parallel_info
        assert info["degraded"] == "serial"
        assert info["mode"] == "serial"
        assert info["retries"] >= 1
        _assert_matches(result, oracle)

    def test_serial_failure_degrades_to_numpy(
        self, fault_env, ranked_db, oracle
    ):
        plan = FaultPlan(
            [
                FaultEvent(kind="attach", times=1000),
                FaultEvent(kind="serial", times=1000),
            ]
        )
        with use_faults(plan):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        info = result.parallel_info
        assert info["degraded"] == "numpy"
        assert info["mode"] == "numpy"
        assert result.backend == "numpy"
        _assert_matches(result, oracle)

    def test_exhaustion_without_pool_raises_typed_error(
        self, fault_env, ranked_db
    ):
        # The serial tier is the last sharded tier when the pool is
        # benignly absent (workers=1 forces the serial path); a serial
        # fault then escapes as the injected error, not a retry loop.
        plan = FaultPlan([FaultEvent(kind="serial", times=1000)])
        with use_faults(plan), parallel.use_workers(1):
            result = parallel.compute_rank_probabilities_parallel(
                ranked_db, 10
            )
        assert result.parallel_info["degraded"] == "numpy"

    def test_session_counters_surface_recovery(self, fault_env, ranked_db):
        session = QuerySession(ranked_db, backend="parallel")
        plan = FaultPlan([FaultEvent(kind="kill", times=1)])
        with use_faults(plan):
            session.rank_probabilities(10)
        assert session.psr_retries >= 1
        assert session.psr_pool_restarts >= 1
        assert session.psr_degraded == 0

        degraded = QuerySession(ranked_db, backend="parallel")
        with use_faults(FaultPlan([FaultEvent(kind="attach", times=1000)])):
            degraded.rank_probabilities(10)
        assert degraded.psr_degraded == 1

    def test_counters_carry_across_derive(self, fault_env, ranked_db):
        session = QuerySession(ranked_db, backend="parallel")
        with use_faults(FaultPlan([FaultEvent(kind="kill", times=1)])):
            session.rank_probabilities(10)
        child = session.derive(generate_synthetic(num_xtuples=40, seed=1))
        assert child.psr_retries == session.psr_retries
        assert child.psr_pool_restarts == session.psr_pool_restarts


class TestPoolSupervision:
    def test_worker_killed_between_requests(self, fault_env, ranked_db, oracle):
        """SIGKILLing a pooled worker must not poison the next request."""
        result = parallel.compute_rank_probabilities_parallel(ranked_db, 10)
        assert result.parallel_info["mode"] == "pool"
        pool = parallel._pool
        assert pool is not None
        victim = next(iter(pool._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        # Let the executor notice the dead worker (it marks itself
        # broken on the next management-thread wakeup or submission).
        deadline = time.monotonic() + 5.0
        while not parallel._pool_is_broken() and time.monotonic() < deadline:
            time.sleep(0.01)
        builds_before = parallel.pool_builds
        again = parallel.compute_rank_probabilities_parallel(ranked_db, 10)
        _assert_matches(again, oracle)
        assert again.parallel_info["degraded"] is None
        assert parallel.pool_builds > builds_before  # rebuilt, not reused

    def test_fork_context_change_invalidates_pool(
        self, fault_env, ranked_db, monkeypatch
    ):
        parallel.compute_rank_probabilities_parallel(ranked_db, 10)
        first_method = parallel._pool_method
        assert first_method is not None
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        other = next((m for m in available if m != first_method), None)
        if other is None:  # pragma: no cover - single-method host
            pytest.skip("host offers only one start method")
        builds_before = parallel.pool_builds
        monkeypatch.setattr(
            parallel,
            "_pick_context",
            lambda: multiprocessing.get_context(other),
        )
        result = parallel.compute_rank_probabilities_parallel(ranked_db, 10)
        assert parallel.pool_builds == builds_before + 1
        assert parallel._pool_method == other
        assert result.parallel_info["mode"] == "pool"

    def test_no_segments_leak_after_faulted_runs(self, fault_env, ranked_db):
        with use_faults(FaultPlan([FaultEvent(kind="kill", times=3)])):
            parallel.compute_rank_probabilities_parallel(ranked_db, 10)
        assert parallel.untracked_segment_names() == set()

    def test_release_columns_for_unlinks_eagerly(self, fault_env, ranked_db):
        parallel.shared_columns(ranked_db)
        assert parallel.live_segment_names()
        parallel.release_columns_for(ranked_db)
        assert parallel.untracked_segment_names() == set()


# ---------------------------------------------------------------------------
# Service-level resilience
# ---------------------------------------------------------------------------
class TestServiceDeadlines:
    def test_expired_deadline_shed_without_psr_pass(self, small_synthetic):
        service = TopKService(backend="python")
        sid = service.register(small_synthetic).snapshot_id
        with pytest.raises(DeadlineExceededError):
            service.query(sid, QuerySpec(k=5, deadline_ms=1e-6))
        # Shed at admission: no lease was taken, no session built, no
        # PSR pass consumed.
        assert service.pool.session_misses == 0
        assert service.pool.session_hits == 0
        assert service.pool.in_flight == 0

    def test_generous_deadline_serves_normally(self, small_synthetic):
        service = TopKService(backend="python")
        sid = service.register(small_synthetic).snapshot_id
        result = service.query(sid, QuerySpec(k=5, deadline_ms=60_000.0))
        assert result.payload["ukranks"]["winners"]
        assert result.counters["psr_retries"] == 0
        assert result.counters["psr_degraded"] == 0

    def test_deadline_does_not_leak_across_requests(self, small_synthetic):
        service = TopKService(backend="python")
        sid = service.register(small_synthetic).snapshot_id
        with pytest.raises(DeadlineExceededError):
            service.query(sid, QuerySpec(k=5, deadline_ms=1e-6))
        # The next (deadline-free) request on the same thread is clean.
        assert service.query(sid, QuerySpec(k=5)).payload["ukranks"]

    def test_clean_respects_deadline(self, small_synthetic):
        from repro.api.specs import CleaningSpec

        service = TopKService(backend="python")
        sid = service.register(small_synthetic).snapshot_id
        with pytest.raises(DeadlineExceededError):
            service.clean(
                sid, CleaningSpec(k=5, budget=10, deadline_ms=1e-6)
            )


class TestAdmissionGate:
    def test_saturated_pool_sheds(self, small_synthetic):
        service = TopKService(
            backend="python", max_in_flight=1, admission_timeout_ms=50.0
        )
        sid = service.register(small_synthetic).snapshot_id
        entered = threading.Event()
        release = threading.Event()
        errors = []

        def hog():
            with service.pool.lease(sid):
                entered.set()
                release.wait(timeout=10.0)

        holder = threading.Thread(target=hog)
        holder.start()
        try:
            assert entered.wait(timeout=10.0)
            with pytest.raises(ServiceOverloadedError):
                service.query(sid, QuerySpec(k=5))
            assert service.pool.shed_requests == 1
        finally:
            release.set()
            holder.join(timeout=10.0)
        # The slot frees up once the holder exits.
        assert service.query(sid, QuerySpec(k=5)).payload["ukranks"]
        assert not errors

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            SessionPool(max_in_flight=0)
        with pytest.raises(ValueError):
            SessionPool(admission_timeout_ms=-1.0)

    def test_tight_deadline_bounds_admission_wait(self, small_synthetic):
        service = TopKService(
            backend="python", max_in_flight=1, admission_timeout_ms=30_000.0
        )
        sid = service.register(small_synthetic).snapshot_id
        entered = threading.Event()
        release = threading.Event()

        def hog():
            with service.pool.lease(sid):
                entered.set()
                release.wait(timeout=10.0)

        holder = threading.Thread(target=hog)
        holder.start()
        try:
            assert entered.wait(timeout=10.0)
            start = time.monotonic()
            with pytest.raises(
                (DeadlineExceededError, ServiceOverloadedError)
            ):
                service.query(sid, QuerySpec(k=5, deadline_ms=100.0))
            # Bounded by the 100ms deadline, not the 30s admission wait.
            assert time.monotonic() - start < 10.0
        finally:
            release.set()
            holder.join(timeout=10.0)


class TestResilienceSpecs:
    def test_query_spec_round_trip(self):
        spec = QuerySpec(
            k=5,
            deadline_ms=1500,
            retry_policy=RetryPolicy(max_attempts=2, backoff_ms=5.0),
        )
        assert spec.deadline_ms == 1500.0
        wire = json.loads(json.dumps(spec.to_dict()))
        assert spec_from_dict(wire) == spec

    def test_retry_policy_coerced_from_mapping(self):
        spec = QuerySpec(k=5, retry_policy={"max_attempts": 2})
        assert isinstance(spec.retry_policy, RetryPolicy)
        assert spec.retry_policy.max_attempts == 2

    @pytest.mark.parametrize("deadline_ms", [0, -5, float("nan"), "soon"])
    def test_bad_deadline_rejected(self, deadline_ms):
        with pytest.raises(InvalidSpecError):
            QuerySpec(k=5, deadline_ms=deadline_ms)

    def test_batch_forbids_per_item_resilience(self):
        with pytest.raises(InvalidSpecError, match="deadline_ms"):
            BatchSpec(items=(QuerySpec(k=5, deadline_ms=10.0),))
        with pytest.raises(InvalidSpecError, match="retry_policy"):
            BatchSpec(
                items=(
                    QualitySpec(k=5, retry_policy=RetryPolicy()),
                )
            )

    def test_batch_level_settings_round_trip(self):
        spec = BatchSpec(
            items=(QuerySpec(k=5),),
            deadline_ms=2000.0,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        wire = json.loads(json.dumps(spec.to_dict()))
        assert spec_from_dict(wire) == spec

    def test_error_taxonomy(self):
        for exc in (
            DeadlineExceededError,
            ServiceOverloadedError,
            RetryExhaustedError,
            FaultInjectedError,
        ):
            assert issubclass(exc, ResilienceError)
            assert issubclass(exc, ReproError)


# ---------------------------------------------------------------------------
# CLI error envelopes
# ---------------------------------------------------------------------------
class TestCliErrorEnvelope:
    @pytest.fixture()
    def db_file(self, tmp_path, small_synthetic):
        path = tmp_path / "db.json"
        io.save_json(small_synthetic, path)
        return path

    def test_deadline_error_serializes(self, tmp_path, db_file, capsys):
        out = tmp_path / "out.json"
        code = cli_main(
            [
                "query",
                "--db",
                str(db_file),
                "-k",
                "5",
                "--deadline-ms",
                "0.000001",
                "--json",
                str(out),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "DeadlineExceededError" in err
        assert "Traceback" not in err
        envelope = json.loads(out.read_text())
        assert envelope["error"]["type"] == "DeadlineExceededError"
        assert "deadline exceeded" in envelope["error"]["message"]

    def test_spec_error_serializes(self, tmp_path, db_file, capsys):
        out = tmp_path / "out.json"
        code = cli_main(
            [
                "query",
                "--db",
                str(db_file),
                "-k",
                "5",
                "--deadline-ms",
                "-3",
                "--json",
                str(out),
            ]
        )
        assert code == 1
        envelope = json.loads(out.read_text())
        assert envelope["error"]["type"] == "InvalidSpecError"

    def test_error_without_json_flag(self, db_file, capsys):
        code = cli_main(
            ["query", "--db", str(db_file), "--deadline-ms", "0.000001"]
        )
        assert code == 1
        assert "DeadlineExceededError" in capsys.readouterr().err

    def test_healthy_run_still_exits_zero(self, tmp_path, db_file):
        out = tmp_path / "out.json"
        code = cli_main(
            [
                "query",
                "--db",
                str(db_file),
                "-k",
                "5",
                "--deadline-ms",
                "60000",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        envelope = json.loads(out.read_text())
        assert "error" not in envelope
        assert envelope["result"]["spec"]["deadline_ms"] == 60000.0


# ---------------------------------------------------------------------------
# Property: faults never change answers, only availability
# ---------------------------------------------------------------------------
_fault_events = st.lists(
    st.builds(
        FaultEvent,
        kind=st.sampled_from(["kill", "hang", "attach", "slow", "serial"]),
        block=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        times=st.integers(min_value=1, max_value=4),
        delay_ms=st.just(10.0),
    ),
    min_size=1,
    max_size=3,
)


class TestFaultTransparency:
    @settings(max_examples=8, deadline=None)
    @given(events=_fault_events)
    def test_any_fault_plan_is_answer_transparent(self, events):
        """A perturbed run matches the fault-free answer or fails typed.

        ``hang`` events are pinned to a short sleep (10ms) so they
        surface as task errors rather than real progress-timeout wairs;
        the dedicated hang test covers the slow path once.
        """
        db = generate_synthetic(num_xtuples=60, seed=11)
        ranked = db.ranked()
        oracle = compute_rank_probabilities(ranked, 8, backend="numpy")
        previous_rows = os.environ.get("REPRO_BLOCK_ROWS")
        os.environ["REPRO_BLOCK_ROWS"] = "16"
        os.environ["REPRO_BACKOFF_MS"] = "1"
        try:
            with use_faults(FaultPlan(events)), parallel.use_workers(2):
                try:
                    result = parallel.compute_rank_probabilities_parallel(
                        ranked, 8
                    )
                except ResilienceError:
                    return  # a typed refusal is an allowed outcome
            _assert_matches(result, oracle)
        finally:
            if previous_rows is None:
                del os.environ["REPRO_BLOCK_ROWS"]
            else:
                os.environ["REPRO_BLOCK_ROWS"] = previous_rows
            os.environ.pop("REPRO_BACKOFF_MS", None)
        assert parallel.untracked_segment_names() == set()
