"""QuerySession: caching, sharing and cleaning-loop threading."""

import random

import pytest
from hypothesis import given, settings

from repro.cleaning.executor import execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.model import CleaningPlan, build_cleaning_problem
from repro.core.tp import compute_quality_tp
from repro.queries.engine import QuerySession, evaluate

from strategies import databases_with_k


class TestCaching:
    def test_rank_probabilities_memoized_per_k(self, udb1):
        session = QuerySession(udb1)
        first = session.rank_probabilities(2)
        second = session.rank_probabilities(2)
        assert first is second
        assert session.psr_misses == 1
        assert session.psr_hits == 1
        assert session.rank_probabilities(3) is not first
        assert session.psr_misses == 2

    def test_all_consumers_share_one_psr_pass(self, udb1):
        session = QuerySession(udb1)
        session.ukranks(2)
        session.ptk(2, 0.4)
        session.global_topk(2)
        quality = session.quality(2)
        assert session.psr_misses == 1
        assert quality.rank_probabilities is session.rank_probabilities(2)

    def test_answers_memoized(self, udb1):
        session = QuerySession(udb1)
        assert session.ukranks(2) is session.ukranks(2)
        assert session.ptk(2, 0.4) is session.ptk(2, 0.4)
        assert session.ptk(2, 0.5) is not session.ptk(2, 0.4)
        assert session.global_topk(2) is session.global_topk(2)
        assert session.quality(2) is session.quality(2)

    def test_evaluate_matches_functional_form(self, udb1):
        session = QuerySession(udb1)
        report = session.evaluate(2, threshold=0.4)
        functional = evaluate(udb1, 2, threshold=0.4)
        assert report.ptk.tids == functional.ptk.tids == ["t1", "t2", "t5"]
        assert report.ukranks.tids == functional.ukranks.tids
        assert report.global_topk.tids == functional.global_topk.tids
        assert report.quality_score == pytest.approx(functional.quality_score)

    def test_accepts_ranked_view(self, udb1):
        ranked = udb1.ranked()
        session = QuerySession(ranked)
        assert session.ranked is ranked
        assert session.quality(2).ranked is ranked

    def test_ranking_override_of_ranked_view_rejected(self, udb1):
        from repro.db.ranking import by_value

        with pytest.raises(ValueError):
            QuerySession(udb1.ranked(), ranking=by_value())

    @settings(max_examples=40, deadline=None)
    @given(databases_with_k())
    def test_session_answers_match_direct_computation(self, db_k):
        db, k = db_k
        session = QuerySession(db)
        report = session.evaluate(k, threshold=0.25)
        direct = evaluate(db, k, threshold=0.25)
        assert report.ptk == direct.ptk
        assert report.ukranks == direct.ukranks
        assert report.global_topk == direct.global_topk
        assert report.quality_score == pytest.approx(
            direct.quality_score, abs=1e-9
        )


class TestPrefill:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_restricted_to_matches_direct_pass(self, backend, small_synthetic):
        import numpy as np

        from repro.queries.psr import compute_rank_probabilities

        ranked = small_synthetic.ranked()
        full = compute_rank_probabilities(ranked, 20, backend=backend)
        for k in (1, 5, 19):
            direct = compute_rank_probabilities(ranked, k, backend=backend)
            restricted = full.restricted_to(k)
            rows = min(direct.cutoff, restricted.cutoff)
            # Rank probabilities are k-independent: the column prefix
            # is bitwise identical.
            assert np.array_equal(
                direct.rho_prefix[:rows], restricted.rho_prefix[:rows]
            )
            # The re-summed top-k vector may differ in the last ulp.
            assert np.allclose(
                direct.topk_array(), restricted.topk_array(), atol=1e-12
            )

    def test_restricted_to_bounds(self, udb1):
        session = QuerySession(udb1)
        rank_probs = session.rank_probabilities(3)
        assert rank_probs.restricted_to(3) is rank_probs
        with pytest.raises(ValueError):
            rank_probs.restricted_to(4)
        with pytest.raises(ValueError):
            rank_probs.restricted_to(0)

    def test_prefill_serves_every_k_from_one_pass(self, small_synthetic):
        session = QuerySession(small_synthetic)
        seeded = session.prefill([5, 12, 3, 12])
        assert seeded == 2
        assert session.psr_misses == 1
        assert session.psr_prefills == 2
        for k in (3, 5, 12):
            session.evaluate(k)
        assert session.psr_misses == 1

    def test_prefill_respects_existing_cache(self, small_synthetic):
        session = QuerySession(small_synthetic)
        direct = session.rank_probabilities(4)
        session.prefill([4, 9])
        # k=4 was already cached directly; prefill must not replace it.
        assert session.rank_probabilities(4) is direct
        assert session.psr_prefills == 0

    def test_prefill_empty(self, udb1):
        session = QuerySession(udb1)
        assert session.prefill([]) == 0
        assert session.psr_misses == 0


class TestDerive:
    def test_derive_same_db_returns_same_session(self, udb1):
        session = QuerySession(udb1)
        session.quality(2)
        assert session.derive(udb1) is session
        assert session.derive(session.ranked) is session

    def test_derive_new_db_preserves_configuration(self, udb1, udb2):
        session = QuerySession(udb1, backend="python")
        derived = session.derive(udb2)
        assert derived is not session
        assert derived.backend == "python"
        assert derived.ranked.ranking is session.ranked.ranking
        assert derived.db is udb2


class TestCleaningThreading:
    def test_executor_threads_session_through(self, udb1):
        session = QuerySession(udb1)
        problem = session.cleaning_problem(
            2,
            {xt.xid: 1 for xt in udb1.xtuples},
            {xt.xid: 1.0 for xt in udb1.xtuples},
            budget=2,
        )
        assert session.psr_misses == 1
        plan = GreedyCleaner().plan(problem)
        outcome = execute_plan(udb1, problem, plan, session=session)
        assert outcome.session is not None
        assert outcome.session.db is outcome.cleaned_db

    def test_failed_probes_keep_cached_session(self, udb1):
        session = QuerySession(udb1)
        problem = session.cleaning_problem(
            2,
            {xt.xid: 1 for xt in udb1.xtuples},
            {xt.xid: 0.0 for xt in udb1.xtuples},  # probes never succeed
            budget=3,
        )
        plan = CleaningPlan(operations={"S1": 1})
        outcome = execute_plan(udb1, problem, plan, session=session)
        # Nothing changed: the very same session (cache intact) comes back.
        assert outcome.cleaned_db is udb1
        assert outcome.session is session
        before = session.psr_misses
        outcome.session.quality(2)
        assert session.psr_misses == before

    def test_adaptive_cleaning_unchanged_by_sessions(self, udb1):
        quality = compute_quality_tp(udb1.ranked(), 2)
        costs = {xt.xid: 1 for xt in udb1.xtuples}
        sc = {xt.xid: 0.5 for xt in udb1.xtuples}
        problem = build_cleaning_problem(quality, costs, sc, budget=6)
        result = clean_adaptively(
            udb1, problem, GreedyCleaner(), rng=random.Random(7)
        )
        assert result.final_quality >= result.initial_quality - 1e-9
        assert result.budget_spent <= problem.budget
        # The round trace carries sessions over each round's outcome db.
        for round_ in result.rounds:
            assert round_.outcome.session is not None
            assert round_.outcome.session.db is round_.outcome.cleaned_db
